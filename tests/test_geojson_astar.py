"""Tests for GeoJSON export and the A* route utility."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import solve
from repro.core.instance import MCFSInstance
from repro.errors import GraphError
from repro.io.geojson import (
    export_scenario,
    instance_to_geojson,
    network_to_geojson,
    solution_to_geojson,
)
from repro.network.astar import astar_distance
from repro.network.dijkstra import shortest_path
from repro.network.graph import Network
from tests.conftest import (
    build_grid_network,
    build_random_network,
    build_two_component_network,
)


def grid_instance() -> MCFSInstance:
    return MCFSInstance(
        network=build_grid_network(4, 4),
        customers=(0, 3, 3, 12),
        facility_nodes=(5, 10),
        capacities=(3, 3),
        k=2,
    )


class TestGeojson:
    def test_network_features(self):
        g = build_grid_network(3, 3)
        fc = network_to_geojson(g)
        assert fc["type"] == "FeatureCollection"
        assert len(fc["features"]) == g.n_edges
        feature = fc["features"][0]
        assert feature["geometry"]["type"] == "LineString"
        assert feature["properties"]["kind"] == "edge"

    def test_requires_coords(self):
        g = Network(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            network_to_geojson(g)

    def test_instance_merges_colocated_customers(self):
        fc = instance_to_geojson(grid_instance())
        customers = [
            f for f in fc["features"] if f["properties"]["kind"] == "customer"
        ]
        by_node = {f["properties"]["node"]: f["properties"]["count"] for f in customers}
        assert by_node[3] == 2
        assert by_node[0] == 1
        candidates = [
            f for f in fc["features"] if f["properties"]["kind"] == "candidate"
        ]
        assert len(candidates) == 2
        assert candidates[0]["properties"]["capacity"] == 3

    def test_solution_layers(self):
        inst = grid_instance()
        sol = solve(inst, method="wma")
        fc = solution_to_geojson(inst, sol)
        kinds = [f["properties"]["kind"] for f in fc["features"]]
        assert kinds.count("facility") == len(sol.selected)
        assert kinds.count("assignment") == inst.m
        loads = {
            f["properties"]["facility_index"]: f["properties"]["load"]
            for f in fc["features"]
            if f["properties"]["kind"] == "facility"
        }
        assert sum(loads.values()) == inst.m

    def test_solution_without_lines(self):
        inst = grid_instance()
        sol = solve(inst, method="wma")
        fc = solution_to_geojson(inst, sol, include_assignment_lines=False)
        kinds = {f["properties"]["kind"] for f in fc["features"]}
        assert "assignment" not in kinds

    def test_export_scenario_round_trip(self, tmp_path):
        inst = grid_instance()
        sol = solve(inst, method="wma")
        path = tmp_path / "scenario.json"
        export_scenario(inst, sol, path)
        payload = json.loads(path.read_text())
        assert set(payload) == {"network", "instance", "solution"}

    def test_export_without_solution(self, tmp_path):
        path = tmp_path / "scenario.json"
        export_scenario(grid_instance(), None, path)
        payload = json.loads(path.read_text())
        assert set(payload) == {"network", "instance"}


class TestAstar:
    def test_matches_dijkstra_on_grids(self):
        g = build_grid_network(6, 6)
        for (s, t) in [(0, 35), (5, 30), (14, 21)]:
            ref_dist, _ = shortest_path(g, s, t)
            dist, path = astar_distance(g, s, t)
            assert dist == pytest.approx(ref_dist)
            assert path[0] == s and path[-1] == t

    def test_matches_dijkstra_on_random_networks(self):
        for seed in range(5):
            g = build_random_network(50, seed=seed)
            rng = np.random.default_rng(seed)
            s, t = (int(v) for v in rng.choice(50, size=2, replace=False))
            try:
                ref_dist, _ = shortest_path(g, s, t)
            except GraphError:
                with pytest.raises(GraphError):
                    astar_distance(g, s, t)
                continue
            dist, _ = astar_distance(g, s, t)
            assert dist == pytest.approx(ref_dist)

    def test_path_is_contiguous(self):
        g = build_grid_network(5, 5)
        dist, path = astar_distance(g, 0, 24)
        total = 0.0
        nxg = g.to_networkx()
        for u, v in zip(path, path[1:], strict=False):
            assert nxg.has_edge(u, v)
            total += nxg[u][v]["weight"]
        assert total == pytest.approx(dist)

    def test_source_equals_target(self):
        g = build_grid_network(3, 3)
        dist, path = astar_distance(g, 4, 4)
        assert dist == 0.0
        assert path == [4]

    def test_no_path_raises(self):
        g = build_two_component_network()
        with pytest.raises(GraphError, match="no path"):
            astar_distance(g, 0, 4)

    def test_requires_coords(self):
        g = Network(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            astar_distance(g, 0, 1)

    def test_invalid_nodes(self):
        g = build_grid_network(3, 3)
        with pytest.raises(GraphError):
            astar_distance(g, 0, 99)

    def test_explores_fewer_nodes_than_dijkstra(self):
        """On a long corridor A* should settle far fewer nodes."""
        g = build_grid_network(4, 40)
        # Count settled nodes via a local reimplementation comparison is
        # overkill; instead check runtime-irrelevant invariant: the A*
        # path sticks to the corridor (length equals Manhattan distance).
        dist, path = astar_distance(g, 0, 39)
        assert dist == pytest.approx(39.0)
        assert len(path) == 40
