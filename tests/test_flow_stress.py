"""Stress tests for the SSPA matcher under tight capacities.

These instances are built to maximize rewiring pressure: many customers
competing for scarce nearby seats, forcing long augmenting chains.  Each
outcome is checked against the Hungarian reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from repro.network.dijkstra import distance_matrix
from repro.network.graph import Network
from tests.conftest import build_grid_network, build_random_network


def hungarian(network, customers, facilities, capacities) -> float:
    if sum(capacities) < len(customers):
        return float("inf")
    mat = distance_matrix(network, customers, facilities)
    cols = [mat[:, j] for j, c in enumerate(capacities) for _ in range(c)]
    expanded = np.array(cols).T
    big = 1e9
    filled = np.where(np.isfinite(expanded), expanded, big)
    rows, col_idx = linear_sum_assignment(filled)
    total = filled[rows, col_idx].sum()
    return float(total) if total < big / 2 else float("inf")


class TestTightPacking:
    def test_exact_fit_on_grid(self):
        """Occupancy 1.0: every seat must be used."""
        g = build_grid_network(6, 6)
        rng = np.random.default_rng(0)
        customers = [int(v) for v in rng.choice(36, size=12, replace=True)]
        facilities = [0, 17, 35]
        capacities = [4, 4, 4]
        result = assign_all(g, customers, facilities, capacities)
        ref = hungarian(g, customers, facilities, capacities)
        assert result.cost == pytest.approx(ref, rel=1e-9)
        loads = [result.assignment.count(j) for j in range(3)]
        assert loads == [4, 4, 4]

    def test_hotspot_contention(self):
        """All customers clustered next to one tiny facility."""
        g = build_grid_network(8, 8)
        customers = [0, 1, 2, 8, 9, 10, 16, 17]
        facilities = [0, 63]
        capacities = [2, 10]
        result = assign_all(g, customers, facilities, capacities)
        ref = hungarian(g, customers, facilities, capacities)
        assert result.cost == pytest.approx(ref, rel=1e-9)

    def test_chain_rewiring(self):
        """A path of capacity-1 facilities forces cascading rewires."""
        n = 21
        edges = [(i, i + 1, 1.0) for i in range(n - 1)]
        g = Network(n, edges)
        customers = [2 * i for i in range(8)]       # 0, 2, ..., 14
        facilities = [2 * i + 1 for i in range(9)]  # 1, 3, ..., 17
        capacities = [1] * 9
        result = assign_all(g, customers, facilities, capacities)
        ref = hungarian(g, customers, facilities, capacities)
        assert result.cost == pytest.approx(ref, rel=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_tight_instances(self, seed):
        g = build_random_network(50, seed=seed, avg_links=4)
        rng = np.random.default_rng(seed + 777)
        m = 20
        customers = [int(v) for v in rng.choice(50, size=m, replace=True)]
        facilities = sorted(int(v) for v in rng.choice(50, size=7, replace=False))
        # Total capacity m or m+1: nearly exact fit.
        capacities = [3, 3, 3, 3, 3, 3, 3]
        ref = hungarian(g, customers, facilities, capacities)
        if np.isinf(ref):
            with pytest.raises(MatchingError):
                assign_all(g, customers, facilities, capacities)
            return
        result = assign_all(g, customers, facilities, capacities)
        assert result.cost == pytest.approx(ref, rel=1e-9)

    def test_large_demand_per_customer(self):
        """One customer matched to every facility (WMA exploration case)."""
        from repro.flow.bipartite import BipartiteState
        from repro.flow.sspa import find_pair

        g = build_grid_network(5, 5)
        facilities = [0, 4, 12, 20, 24]
        state = BipartiteState(g, [12], facilities, [1] * 5)
        for _ in range(5):
            find_pair(state, 0)
        assert state.assignment_count(0) == 5
        with pytest.raises(MatchingError):
            find_pair(state, 0)

    def test_mixed_demands_still_optimal_total(self):
        """Multiple units per customer: min-cost flow reference via
        repeated columns and duplicated customer rows."""
        from repro.flow.bipartite import BipartiteState
        from repro.flow.sspa import find_pair

        g = build_grid_network(4, 4)
        customers = [5, 10]
        facilities = [0, 3, 12, 15]
        capacities = [1, 1, 1, 1]
        demands = [2, 2]

        state = BipartiteState(g, customers, facilities, capacities)
        for i, d in enumerate(demands):
            for _ in range(d):
                find_pair(state, i)

        # Reference: duplicate each customer row per unit of demand and
        # forbid the same (customer, facility) pair twice.  With unit
        # capacities that reduction is exact.
        mat = distance_matrix(g, customers, facilities)
        rows = [mat[0], mat[0], mat[1], mat[1]]
        expanded = np.array(rows)
        r, c = linear_sum_assignment(expanded)
        # Check the duplicated-row solution never reuses a facility for
        # the same original customer (it cannot: each column is used once
        # and capacities are 1).
        ref = expanded[r, c].sum()
        assert state.total_cost() == pytest.approx(ref, rel=1e-9)
