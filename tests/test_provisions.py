"""Tests for the special provisions (Algorithms 4 and 5)."""

from __future__ import annotations

import pytest

from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components, select_greedy
from repro.errors import InfeasibleInstanceError
from tests.conftest import build_line_network, build_two_component_network


class TestSelectGreedy:
    def test_pads_to_k(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 9),
            facility_nodes=(0, 5, 9),
            capacities=(5, 5, 5),
            k=2,
        )
        padded = select_greedy(inst, [0])
        assert len(padded) == 2
        assert 0 in padded

    def test_adds_facility_near_worst_customer(self):
        # With facility 0 selected, the worst customer is at node 9; the
        # nearest open candidate to it is node 9 itself.
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 9),
            facility_nodes=(0, 5, 9),
            capacities=(5, 5, 5),
            k=2,
        )
        padded = select_greedy(inst, [0])
        assert padded == [0, 2]

    def test_prioritizes_uncovered_component(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(5, 5),
            k=2,
        )
        padded = select_greedy(inst, [0])
        # The second component (customer 3, infinitely far from facility
        # 0) must receive the next facility.
        assert sorted(padded) == [0, 1]

    def test_noop_when_already_full(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0,),
            facility_nodes=(0, 5),
            capacities=(5, 5),
            k=1,
        )
        assert select_greedy(inst, [1]) == [1]

    def test_from_empty_selection(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(2, 7),
            facility_nodes=(0, 5, 9),
            capacities=(5, 5, 5),
            k=2,
        )
        padded = select_greedy(inst, [])
        assert len(padded) == 2
        assert len(set(padded)) == 2


class TestCoverComponents:
    def test_moves_capacity_to_deficient_component(self):
        g = build_two_component_network()
        # Component A: nodes 0-2 with 1 customer; component B: nodes 3-5
        # with 2 customers.  Selected facilities (both in A) leave B
        # uncovered; the repair must move one to B.
        inst = MCFSInstance(
            network=g,
            customers=(0, 3, 4),
            facility_nodes=(1, 2, 5),
            capacities=(2, 2, 2),
            k=2,
        )
        repaired = cover_components(inst, [0, 1])
        assert 2 in repaired  # facility in component B now selected
        assert len(repaired) == 2

    def test_prefers_high_capacity_incoming(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3, 4, 5),
            facility_nodes=(1, 4, 5),
            capacities=(2, 1, 3),
            k=2,
        )
        # B needs 3 seats; choosing facility 2 (cap 3) suffices.
        repaired = cover_components(inst, [0, 1])
        assert 2 in repaired

    def test_noop_when_already_sufficient(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(2, 2),
            k=2,
        )
        assert cover_components(inst, [0, 1]) == [0, 1]

    def test_infeasible_budget_raises(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(1, 1),
            k=1,
        )
        with pytest.raises(InfeasibleInstanceError):
            cover_components(inst, [0])

    def test_swap_within_component_when_needed(self):
        # One component; selected facility too small, bigger candidate
        # available.
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(0, 1, 2),
            facility_nodes=(0, 5),
            capacities=(1, 5),
            k=1,
        )
        repaired = cover_components(inst, [0])
        assert repaired == [1]

    def test_result_sorted_and_within_budget(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 3, 4),
            facility_nodes=(1, 2, 4, 5),
            capacities=(2, 2, 2, 2),
            k=2,
        )
        repaired = cover_components(inst, [0, 1])
        assert repaired == sorted(repaired)
        assert len(repaired) == 2
