"""Tests for the benchmark harness and reporting."""

from __future__ import annotations

import io
import json

import pytest

from repro.bench import experiments as ex
from repro.bench.harness import (
    BenchRow,
    best_objective,
    load_rows,
    objective_ratios,
    run_solvers,
    save_rows,
    solver_row,
)
from repro.bench.reporting import format_series, format_table, paper_shape_summary
from tests.conftest import build_random_instance


class TestSolverRow:
    def test_successful_row(self):
        inst = build_random_instance(0, cap_range=(3, 6))
        row = solver_row(inst, "wma", params={"n": 30})
        assert row.status == "ok"
        assert row.objective > 0
        assert row.params == {"n": 30}
        assert not row.failed

    def test_timeout_becomes_row(self):
        inst = build_random_instance(
            1, n=60, m=25, l=40, k=8, cap_range=(4, 8)
        )
        row = solver_row(inst, "exact", time_limit=1e-4)
        assert row.status == "timeout"
        assert row.failed
        assert row.objective is None

    def test_infeasible_becomes_error_row(self):
        from repro.core.instance import MCFSInstance
        from tests.conftest import build_two_component_network

        inst = MCFSInstance(
            network=build_two_component_network(),
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(5, 5),
            k=1,
        )
        row = solver_row(inst, "wma")
        assert row.status == "error"
        assert "error" in row.meta

    def test_cells(self):
        row = BenchRow(
            label="x", method="wma", objective=1.23456, runtime_sec=0.5,
            params={"n": 10},
        )
        cells = row.cells()
        assert cells["method"] == "wma"
        assert cells["n"] == 10
        assert cells["objective"] == 1.2


class TestRunSolvers:
    def test_runs_all_methods(self):
        inst = build_random_instance(2, cap_range=(3, 6))
        rows = run_solvers(inst, ["wma", "hilbert", "random"])
        assert [r.method for r in rows] == ["wma", "hilbert", "random"]
        assert all(r.status == "ok" for r in rows)

    def test_helpers(self):
        rows = [
            BenchRow("a", "wma", 10.0, 0.1),
            BenchRow("a", "hilbert", 20.0, 0.1),
            BenchRow("a", "exact", None, None, status="timeout"),
        ]
        assert best_objective(rows) == 10.0
        ratios = objective_ratios(rows)
        assert ratios["hilbert"] == pytest.approx(2.0)
        assert "exact" not in ratios


class TestRowPersistence:
    def test_round_trip(self):
        rows = [
            BenchRow("a", "wma", 10.0, 0.1, params={"n": 5}),
            BenchRow("a", "exact", None, None, status="timeout"),
        ]
        buf = io.StringIO()
        save_rows(rows, buf)
        buf.seek(0)
        loaded = load_rows(buf)
        assert [r.as_record() for r in loaded] == [
            r.as_record() for r in rows
        ]

    def test_load_ignores_unknown_keys(self):
        # Rows written by a newer harness may carry extra fields; the
        # reader must skip them instead of crashing.
        row = BenchRow("a", "wma", 10.0, 0.1, metrics={"dijkstra.runs": 3})
        records = [row.as_record()]
        records[0]["future_field"] = {"nested": True}
        buf = io.StringIO(json.dumps(records))
        loaded = load_rows(buf)
        assert len(loaded) == 1
        assert loaded[0].objective == 10.0
        assert loaded[0].metrics == {"dijkstra.runs": 3}
        assert not hasattr(loaded[0], "future_field")


class TestReporting:
    def test_format_table(self):
        rows = [
            BenchRow("a", "wma", 10.0, 0.1, params={"n": 5}),
            BenchRow("a", "exact", None, None, status="timeout", params={"n": 5}),
        ]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "wma" in text
        assert "fail" in text

    def test_format_table_plain_dicts(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}])
        assert "a" in text and "c" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        rows = [
            BenchRow("a", "wma", 10.0, 0.1, params={"n": 5}),
            BenchRow("a", "wma", 12.0, 0.2, params={"n": 10}),
            BenchRow("a", "hilbert", 15.0, 0.05, params={"n": 5}),
        ]
        text = format_series(rows, x_key="n")
        assert "wma" in text
        assert "hilbert" in text
        assert "fail" in text  # hilbert has no n=10 point

    def test_paper_shape_summary(self):
        rows = [
            BenchRow("a", "wma", 10.0, 0.1, params={"n": 5}),
            BenchRow("a", "hilbert", 20.0, 0.2, params={"n": 5}),
        ]
        summary = paper_shape_summary(rows)
        assert summary["wma"]["mean_ratio_to_best"] == 1.0
        assert summary["hilbert"]["mean_ratio_to_best"] == 2.0


class TestExperimentFactories:
    def test_fig6_cases_built(self):
        for factory in (
            ex.fig6a_cases,
            ex.fig6b_cases,
            ex.fig6c_cases,
            ex.fig6d_cases,
        ):
            cases = factory(sizes=(128,), seed=1)
            assert len(cases) == 1
            params, inst = cases[0]
            assert params["n"] == 128
            assert inst.m >= 1

    def test_fig7_cases_built(self):
        cases = ex.fig7d_cases(sizes=(128,), seed=1)
        _, inst = cases[0]
        assert inst.network.n_nodes >= 128

    def test_fig8a_l_sweep(self):
        cases = ex.fig8a_cases(n=256, fracs=(0.4, 1.0), seeds=(0,))
        ls = [inst.l for _, inst in cases]
        assert ls[0] < ls[1]

    def test_fig9a_reports_measured_degree(self):
        cases = ex.fig9a_cases(n=128, alphas=(1.0,), seed=0)
        params, _ = cases[0]
        assert params["avg_degree"] > 0

    def test_table4_has_four_cities(self):
        cases = ex.table4_cases(scale=0.08, m=24, k=4)
        assert {p["city"] for p, _ in cases} == {
            "aalborg",
            "riga",
            "copenhagen",
            "las_vegas",
        }

    def test_include_exact_gate(self):
        small = ex.fig6a_cases(sizes=(128,), seed=0)[0][1]
        assert ex.include_exact(small)
        big_cases = ex.fig6a_cases(sizes=(1024,), seed=0)
        assert not ex.include_exact(big_cases[0][1])

    def test_fig12b_instance(self):
        inst = ex.fig12b_instance(scale=0.05, n_venues=40, m=30, k=12)
        assert inst.l == 40
        assert inst.m == 30
