"""Tests for the OSM XML importer."""

from __future__ import annotations

import io
import math

import numpy as np
import pytest

from repro import solve, validate_solution
from repro.core.instance import MCFSInstance
from repro.errors import GraphError
from repro.io.osm import EARTH_RADIUS_M, load_osm_xml, nearest_network_node

# A tiny hand-written extract: a 4-node square of residential streets
# (~111 m sides), one oneway street, one footpath-free building way, and
# an unused node.
SAMPLE_OSM = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6">
  <node id="100" lat="55.6760" lon="12.5680"/>
  <node id="101" lat="55.6770" lon="12.5680"/>
  <node id="102" lat="55.6770" lon="12.5696"/>
  <node id="103" lat="55.6760" lon="12.5696"/>
  <node id="999" lat="55.7000" lon="12.6000"/>
  <way id="1">
    <nd ref="100"/><nd ref="101"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="2">
    <nd ref="101"/><nd ref="102"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="3">
    <nd ref="102"/><nd ref="103"/><nd ref="100"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="4">
    <nd ref="100"/><nd ref="102"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="yes"/>
  </way>
  <way id="5">
    <nd ref="100"/><nd ref="999"/>
    <tag k="building" v="yes"/>
  </way>
</osm>
"""


def sample() -> io.BytesIO:
    return io.BytesIO(SAMPLE_OSM.encode())


class TestParsing:
    def test_nodes_and_edges(self):
        result = load_osm_xml(sample())
        g = result.network
        assert g.n_nodes == 4  # node 999 only touches a building way
        # ways 1-3 give the square's 4 sides; way 4 adds the diagonal.
        assert g.n_edges == 5
        assert result.osm_node_ids == [100, 101, 102, 103]

    def test_edge_lengths_are_haversine_meters(self):
        result = load_osm_xml(sample())
        # Side 100-101 spans 0.001 degrees latitude.
        expected = math.radians(0.001) * EARTH_RADIUS_M
        dense = {osm: i for i, osm in enumerate(result.osm_node_ids)}
        for u, v, w in result.network.edges():
            if {u, v} == {dense[100], dense[101]}:
                assert w == pytest.approx(expected, rel=1e-6)
                break
        else:
            pytest.fail("edge 100-101 missing")

    def test_non_highway_ways_ignored(self):
        result = load_osm_xml(sample())
        dense_ids = set(result.osm_node_ids)
        assert 999 not in dense_ids

    def test_directed_mode_honours_oneway(self):
        result = load_osm_xml(sample(), directed=True)
        g = result.network
        assert g.directed
        dense = {osm: i for i, osm in enumerate(result.osm_node_ids)}
        arcs = {(u, v) for u, v, _ in g.edges()}
        # The oneway way 4 runs 100 -> 102 only.
        assert (dense[100], dense[102]) in arcs
        assert (dense[102], dense[100]) not in arcs
        # Two-way residential streets have both arcs.
        assert (dense[100], dense[101]) in arcs
        assert (dense[101], dense[100]) in arcs

    def test_highway_whitelist(self):
        result = load_osm_xml(sample(), keep_highways={"primary"})
        assert result.network.n_edges == 1

    def test_empty_extract_rejected(self):
        empty = io.BytesIO(b'<?xml version="1.0"?><osm version="0.6"></osm>')
        with pytest.raises(GraphError, match="no routable"):
            load_osm_xml(empty)

    def test_file_path_input(self, tmp_path):
        path = tmp_path / "city.osm"
        path.write_text(SAMPLE_OSM)
        result = load_osm_xml(path)
        assert result.network.n_nodes == 4


class TestProjection:
    def test_coords_in_meters_around_centroid(self):
        result = load_osm_xml(sample())
        coords = result.network.coords
        # Centered: the centroid sits near the origin.
        assert np.allclose(coords.mean(axis=0), [0, 0], atol=1.0)
        # The square's extent is ~111 m x ~100 m.
        extent = coords.max(axis=0) - coords.min(axis=0)
        assert 80 < extent[0] < 130
        assert 80 < extent[1] < 130

    def test_project_round_trip_consistency(self):
        result = load_osm_xml(sample())
        x, y = result.project(55.6760, 12.5680)  # node 100's position
        dense = result.osm_node_ids.index(100)
        assert np.allclose(
            result.network.coords[dense], [x, y], atol=1e-6
        )

    def test_nearest_network_node(self):
        result = load_osm_xml(sample())
        # Query right on node 103.
        idx = nearest_network_node(result, 55.6760, 12.5696)
        assert result.osm_node_ids[idx] == 103


class TestEndToEnd:
    def test_solve_on_imported_network(self):
        result = load_osm_xml(sample())
        g = result.network
        inst = MCFSInstance(
            network=g,
            customers=(0, 1),
            facility_nodes=(2, 3),
            capacities=(1, 1),
            k=2,
        )
        sol = solve(inst, method="wma")
        validate_solution(inst, sol)
        assert sol.objective > 0
