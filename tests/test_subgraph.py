"""Tests for induced subgraphs and instance restriction."""

from __future__ import annotations

import numpy as np
import pytest

from repro import solve, validate_solution
from repro.core.instance import MCFSInstance
from repro.errors import GraphError, InvalidInstanceError
from repro.network.graph import Network
from repro.network.subgraph import (
    giant_component_instance,
    induced_subgraph,
    largest_component,
    restrict_instance,
)
from tests.conftest import build_line_network, build_two_component_network


class TestInducedSubgraph:
    def test_basic(self):
        g = build_line_network(6)
        sub = induced_subgraph(g, [1, 2, 3])
        assert sub.network.n_nodes == 3
        assert sorted(sub.network.edges()) == [(0, 1, 1.0), (1, 2, 1.0)]
        assert sub.to_sub == {1: 0, 2: 1, 3: 2}
        assert sub.to_original.tolist() == [1, 2, 3]

    def test_crossing_edges_dropped(self):
        g = build_line_network(6)
        sub = induced_subgraph(g, [0, 1, 4, 5])
        assert sorted(sub.network.edges()) == [(0, 1, 1.0), (2, 3, 1.0)]
        assert sub.network.stats().n_components == 2

    def test_coords_carried(self):
        g = build_line_network(5, spacing=2.0)
        sub = induced_subgraph(g, [3, 4])
        assert np.allclose(sub.network.coords, [[6.0, 0.0], [8.0, 0.0]])

    def test_duplicates_rejected(self):
        g = build_line_network(4)
        with pytest.raises(GraphError, match="distinct"):
            induced_subgraph(g, [1, 1])

    def test_out_of_range_rejected(self):
        g = build_line_network(4)
        with pytest.raises(GraphError):
            induced_subgraph(g, [99])

    def test_directed_preserved(self):
        g = Network(3, [(0, 1, 1.0), (1, 2, 1.0)], directed=True)
        sub = induced_subgraph(g, [0, 1])
        assert sub.network.directed
        assert list(sub.network.neighbors(1)) == []


class TestLargestComponent:
    def test_picks_biggest(self):
        g = Network(5, [(0, 1, 1.0), (1, 2, 1.0)])
        sub = largest_component(g)
        assert sub.network.n_nodes == 3
        assert sorted(sub.to_original.tolist()) == [0, 1, 2]

    def test_two_equal_triangles(self):
        g = build_two_component_network()
        sub = largest_component(g)
        assert sub.network.n_nodes == 3


class TestRestrictInstance:
    def test_drops_outsiders(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 3),
            facility_nodes=(2, 5),
            capacities=(4, 4),
            k=2,
        )
        sub = induced_subgraph(g, [0, 1, 2])
        restricted = restrict_instance(inst, sub)
        assert restricted.m == 2
        assert restricted.l == 1
        assert restricted.k == 1
        sol = solve(restricted, method="wma")
        validate_solution(restricted, sol)

    def test_no_customers_rejected(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(3,),
            facility_nodes=(2, 5),
            capacities=(4, 4),
            k=1,
        )
        sub = induced_subgraph(g, [0, 1, 2])
        with pytest.raises(InvalidInstanceError, match="customers"):
            restrict_instance(inst, sub)

    def test_no_candidates_rejected(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(5,),
            capacities=(4,),
            k=1,
        )
        sub = induced_subgraph(g, [0, 1, 2])
        with pytest.raises(InvalidInstanceError, match="candidates"):
            restrict_instance(inst, sub)

    def test_giant_component_instance(self):
        g = Network(
            7,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (5, 6, 1.0)],
            coords=np.zeros((7, 2)),
        )
        inst = MCFSInstance(
            network=g,
            customers=(0, 3, 5),
            facility_nodes=(1, 6),
            capacities=(4, 4),
            k=2,
        )
        restricted = giant_component_instance(inst)
        assert restricted.network.n_nodes == 4
        assert restricted.m == 2  # customer 5 dropped
        assert restricted.l == 1
        sol = solve(restricted, method="wma")
        validate_solution(restricted, sol)
