"""Tests for the one-call instance builders."""

from __future__ import annotations

import pytest

from repro.core.validation import is_feasible
from repro.datagen.instances import city_instance, clustered_instance, uniform_instance
from repro.datagen.urban import grid_city


class TestUniformInstance:
    def test_paper_defaults(self):
        inst = uniform_instance(256, seed=0)
        assert inst.l == inst.network.n_nodes  # F_p = V
        assert inst.m == 26
        assert set(inst.capacities) == {20}
        assert is_feasible(inst)

    def test_k_fraction(self):
        inst = uniform_instance(256, k_frac_of_m=0.5, seed=0, adjust_k=False)
        assert inst.k == max(1, round(0.5 * inst.m))

    def test_nonuniform_capacity_range(self):
        inst = uniform_instance(256, capacity=(1, 10), seed=1)
        assert min(inst.capacities) >= 1
        assert max(inst.capacities) <= 10
        assert len(set(inst.capacities)) > 1

    def test_facility_fraction(self):
        inst = uniform_instance(256, facility_frac=0.5, seed=2)
        assert inst.l == 128

    def test_adjust_k_on_fragmented_graph(self):
        # alpha=0.8 fragments the graph; k must rise to cover components.
        inst = uniform_instance(256, alpha=0.8, seed=3)
        assert is_feasible(inst)

    def test_deterministic(self):
        a = uniform_instance(128, seed=9)
        b = uniform_instance(128, seed=9)
        assert a.customers == b.customers
        assert a.k == b.k


class TestClusteredInstance:
    def test_includes_cluster_centers(self):
        inst = clustered_instance(200, n_clusters=10, seed=0)
        assert inst.network.n_nodes == 210

    def test_explicit_m_and_k(self):
        inst = clustered_instance(
            200, m=50, k=10, capacity=10, seed=1, adjust_k=False
        )
        assert inst.m == 50
        assert inst.k == 10

    def test_multiple_customers_per_node(self):
        inst = clustered_instance(100, m=300, k=30, capacity=20, seed=2)
        assert inst.m == 300
        assert len(set(inst.customers)) <= 110

    def test_feasible(self):
        for seed in range(3):
            inst = clustered_instance(300, seed=seed)
            assert is_feasible(inst)


class TestCityInstance:
    def test_basic(self):
        g = grid_city(12, 12, seed=0)
        inst = city_instance(g, m=30, k=5, capacity=10, seed=0)
        assert inst.m == 30
        assert inst.l == g.n_nodes
        assert is_feasible(inst)

    def test_candidate_subset(self):
        g = grid_city(12, 12, seed=0)
        inst = city_instance(g, m=30, k=5, capacity=10, l=40, seed=0)
        assert inst.l == 40

    def test_explicit_facilities_and_customers(self):
        g = grid_city(10, 10, seed=1)
        facilities = [0, 5, 50, 99]
        customers = [1, 2, 3]
        inst = city_instance(
            g,
            m=3,
            k=2,
            capacity=[2, 2, 2, 2],
            customer_nodes=customers,
            facility_nodes=facilities,
        )
        assert inst.facility_nodes == (0, 5, 50, 99)
        assert inst.customers == (1, 2, 3)

    def test_capacity_list_length_checked(self):
        g = grid_city(10, 10, seed=1)
        with pytest.raises(ValueError):
            city_instance(
                g, m=3, k=2, capacity=[2, 2], facility_nodes=[0, 1, 2]
            )

    def test_name_recorded(self):
        g = grid_city(8, 8, seed=2)
        inst = city_instance(g, m=5, k=2, capacity=5, name="vegas")
        assert inst.name.startswith("vegas")
