"""Targeted tests for less-travelled solver code paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro import validate_solution
from repro.baselines.exact import solve_exact
from repro.baselines.hilbert import _component_budgets
from repro.baselines.wma_naive import _final_greedy_assignment
from repro.core.instance import MCFSInstance
from repro.core.wma import solve_wma_uniform_first
from tests.conftest import (
    build_grid_network,
    build_line_network,
    build_two_component_network,
)


class TestExactOptions:
    def test_mip_gap_option_accepted(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(1, 8),
            facility_nodes=(0, 4, 9),
            capacities=(2, 2, 2),
            k=2,
        )
        sol = solve_exact(inst, mip_gap=0.01)
        validate_solution(inst, sol)

    def test_unused_open_facilities_dropped(self):
        # With k = l and zero-cost colocations, HiGHS may open facilities
        # nothing is assigned to; the wrapper must drop them.
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0,),
            facility_nodes=(0, 5, 9),
            capacities=(5, 5, 5),
            k=3,
        )
        sol = solve_exact(inst)
        validate_solution(inst, sol)
        assert set(sol.selected) == set(sol.assignment)


class TestHilbertBudgets:
    def test_budgets_sum_to_k(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 3, 4),
            facility_nodes=(0, 1, 2, 3, 4, 5),
            capacities=(2,) * 6,
            k=4,
        )
        budgets = _component_budgets(inst)
        assert sum(b for _, _, b in budgets) <= inst.k
        # Both populated components get at least their minimum.
        for cust_idx, fac_idx, budget in budgets:
            assert budget >= 1
            assert len(fac_idx) >= budget

    def test_budget_proportional_to_customers(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 2, 3),  # 3 in A, 1 in B
            facility_nodes=(0, 1, 2, 3, 4, 5),
            capacities=(1,) * 6,
            k=4,
        )
        budgets = {
            len(cust): budget for cust, _, budget in _component_budgets(inst)
        }
        assert budgets[3] >= budgets[1]


class TestNaiveFallback:
    def test_greedy_dead_end_repaired(self):
        # Greedy assignment in an adversarial order can strand the last
        # customer (all near seats taken); the fallback must produce a
        # feasible optimal assignment instead.
        inst = MCFSInstance(
            network=build_grid_network(3, 3),
            customers=(4, 4, 4),
            facility_nodes=(0, 4),
            capacities=(2, 1),
            k=2,
        )
        for seed in range(5):
            rng = np.random.default_rng(seed)
            assignment, objective, repaired = _final_greedy_assignment(
                inst, [0, 1], rng
            )
            assert sorted(assignment.count(j) for j in (0, 1)) == [1, 2]
            assert objective == pytest.approx(4.0)


class TestUniformFirstEscalation:
    def test_flattened_capacity_escalates(self):
        # One big facility carries the component; the mean-capacity proxy
        # (2) is infeasible for k=1, so UF must escalate and still return
        # a valid solution.
        inst = MCFSInstance(
            network=build_line_network(8),
            customers=(0, 1, 2, 3),
            facility_nodes=(2, 6),
            capacities=(4, 1),
            k=1,
        )
        sol = solve_wma_uniform_first(inst)
        validate_solution(inst, sol)
        assert sol.selected == (0,)

    def test_uf_on_already_uniform(self):
        inst = MCFSInstance(
            network=build_line_network(8),
            customers=(0, 7),
            facility_nodes=(1, 6),
            capacities=(2, 2),
            k=2,
        )
        sol = solve_wma_uniform_first(inst)
        validate_solution(inst, sol)
        assert sol.objective == pytest.approx(2.0)
