"""Unit tests for the symbolic loop-cost model.

Covers the intraprocedural loop classifier (instance vs bounded
against the size lattice), the interprocedural summary propagation
(call-site depth + callee total, recursion capping), the hot-path
reachability set, and the committed budget file parsing.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis.costmodel import (
    DEFAULT_CEILING,
    CostModel,
    analyze_function,
    find_budgets_file,
    load_budgets,
)
from repro.analysis.engine import LintEngine


def analyze(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return analyze_function(func)


def project_of(tmp_path: Path, files: dict[str, str]):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return LintEngine(tmp_path).parse_project()


class TestLoopClassifier:
    def test_loop_over_instance_collection_name(self):
        info = analyze(
            """
            def f(nodes):
                for u in nodes:
                    pass
            """
        )
        assert [li.kind for li in info.loops] == ["instance"]
        assert info.local_depth == 1

    def test_loop_over_annotated_list_parameter(self):
        info = analyze(
            """
            def f(rows: list[int]):
                for r in rows:
                    pass
            """
        )
        assert [li.kind for li in info.loops] == ["instance"]

    def test_range_loop_is_bounded(self):
        info = analyze(
            """
            def f():
                for i in range(8):
                    pass
            """
        )
        assert [li.kind for li in info.loops] == ["bounded"]
        assert info.local_depth == 0

    def test_range_over_instance_scalar_attribute_is_instance(self):
        # Bare scalar names stay bounded (a plain ``n`` could be a knob),
        # but ``range(state.m)``-style attribute scalars are the
        # instance-size idiom the flow layer uses everywhere.
        info = analyze(
            """
            def f(state):
                for i in range(state.n_nodes):
                    pass
            """
        )
        assert [li.kind for li in info.loops] == ["instance"]

    def test_while_loops_are_always_instance(self):
        info = analyze(
            """
            def f():
                while True:
                    break
            """
        )
        assert [li.kind for li in info.loops] == ["instance"]

    def test_dict_view_inherits_receiver_size(self):
        info = analyze(
            """
            def f(adjacency: dict[int, list[int]]):
                for u, row in adjacency.items():
                    pass
            """
        )
        assert [li.kind for li in info.loops] == ["instance"]

    def test_nested_depth_and_line_stacks(self):
        info = analyze(
            """
            def f(nodes, edges):
                for u in nodes:
                    for e in edges:
                        x = 1
                done = True
            """
        )
        assert info.local_depth == 2
        assert info.depth_at(5) == 2  # x = 1
        assert info.depth_at(6) == 0  # done = True
        assert len(info.stack_at(5)) == 2

    def test_bounded_wrapper_over_instance_iterable_stays_instance(self):
        info = analyze(
            """
            def f(nodes):
                for i, u in enumerate(nodes):
                    pass
            """
        )
        assert [li.kind for li in info.loops] == ["instance"]

    def test_local_rebinding_propagates_instance_size(self):
        info = analyze(
            """
            def f(nodes):
                frontier = nodes
                for u in frontier:
                    pass
            """
        )
        assert [li.kind for li in info.loops] == ["instance"]


class TestCostModel:
    def test_call_site_depth_composes_with_callee(self, tmp_path):
        project = project_of(
            tmp_path,
            {
                "flow/a.py": """
                    def inner(edges):
                        for e in edges:
                            pass

                    def outer(nodes, edges):
                        for u in nodes:
                            inner(edges)
                    """
            },
        )
        model = CostModel(project)
        outer = model.summary("flow.a.outer")
        assert outer is not None
        assert outer.total_depth == 2
        assert outer.local_depth == 1
        assert "inner" in outer.via
        assert outer.cost_label.startswith("O(")

    def test_recursion_does_not_diverge(self, tmp_path):
        project = project_of(
            tmp_path,
            {
                "flow/a.py": """
                    def spin(nodes):
                        for u in nodes:
                            spin(nodes)
                    """
            },
        )
        model = CostModel(project)
        summary = model.summary("flow.a.spin")
        assert summary is not None
        assert summary.recursive
        assert summary.total_depth >= 1

    def test_flat_function_is_constant(self, tmp_path):
        project = project_of(
            tmp_path,
            {"flow/a.py": "def f(x):\n    return x + 1\n"},
        )
        summary = CostModel(project).summary("flow.a.f")
        assert summary is not None
        assert summary.total_depth == 0
        assert summary.cost_label == "O(1)"

    def test_solver_registry_marks_hot(self, tmp_path):
        # The registry lives in the package root, exactly as the real
        # tree declares ``SOLVERS`` in ``repro/__init__.py``.
        project = project_of(
            tmp_path,
            {
                "__init__.py": """
                    from core.a import solve
                    SOLVERS = {"wma": solve}
                    """,
                "core/__init__.py": "",
                "core/a.py": """
                    def helper(edges):
                        for e in edges:
                            pass

                    def solve(nodes, edges):
                        for u in nodes:
                            helper(edges)

                    def cold(nodes):
                        for u in nodes:
                            pass
                    """,
            },
        )
        model = CostModel(project)
        hot = model.hot_nodes()
        assert "core.a.solve" in hot
        assert "core.a.helper" in hot  # reachable through solve
        assert "core.a.cold" not in hot

    def test_module_costs_and_export_shapes(self, tmp_path):
        project = project_of(
            tmp_path,
            {
                "__init__.py": """
                    from core.a import solve
                    SOLVERS = {"wma": solve}
                    """,
                "core/__init__.py": "",
                "core/a.py": """
                    def solve(nodes, edges):
                        for u in nodes:
                            for e in edges:
                                pass
                    """,
            },
        )
        model = CostModel(project)
        costs = model.module_costs()
        assert costs["core.a"] == (2, "core.a.solve")

        doc = model.as_dict({"core.a": 3})
        assert doc["kind"] == "cost"
        assert doc["default_ceiling"] == DEFAULT_CEILING
        assert "core.a.solve" in doc["functions"]
        assert doc["functions"]["core.a.solve"]["hot"] is True

        dot = model.to_dot()
        assert dot.startswith("digraph")
        assert "core.a.solve" in dot


class TestBudgets:
    def test_load_budgets_round_trip(self, tmp_path):
        path = tmp_path / "cost-budgets.toml"
        path.write_text(
            "# ceilings\n[budgets]\n"
            '"flow.sspa" = 4\n"network.ch" = 3\n'
        )
        assert load_budgets(path) == {"flow.sspa": 4, "network.ch": 3}

    def test_load_budgets_missing_file_is_empty(self, tmp_path):
        assert load_budgets(tmp_path / "nope.toml") == {}

    def test_find_budgets_file_walks_up(self, tmp_path):
        (tmp_path / "cost-budgets.toml").write_text("[budgets]\n")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        found = find_budgets_file(nested)
        assert found == tmp_path / "cost-budgets.toml"

    def test_committed_budget_file_parses(self):
        repo_root = Path(__file__).resolve().parents[1]
        budgets = load_budgets(repo_root / "cost-budgets.toml")
        assert budgets, "committed cost-budgets.toml must not be empty"
        assert all(
            isinstance(v, int) and v >= DEFAULT_CEILING
            for v in budgets.values()
        )
