"""Cross-cutting property-based tests over the whole solver stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro import solve, validate_solution
from repro.core.instance import MCFSInstance
from repro.core.validation import is_feasible
from repro.errors import InfeasibleInstanceError
from tests.conftest import build_random_network


def draw_instance(seed: int, m: int, l: int, k: int, cap_hi: int) -> MCFSInstance:
    network = build_random_network(30, seed=seed % 25)
    rng = np.random.default_rng(seed)
    customers = [int(v) for v in rng.choice(30, size=m, replace=True)]
    facilities = sorted(int(v) for v in rng.choice(30, size=l, replace=False))
    capacities = [int(c) for c in rng.integers(1, cap_hi + 1, size=l)]
    return MCFSInstance(
        network=network,
        customers=tuple(customers),
        facility_nodes=tuple(facilities),
        capacities=tuple(capacities),
        k=min(k, l),
    )


COMMON_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON_SETTINGS
@given(
    seed=st.integers(0, 5_000),
    m=st.integers(1, 9),
    l=st.integers(2, 10),
    k=st.integers(1, 5),
    cap_hi=st.integers(2, 6),
)
def test_property_wma_output_is_always_feasible(seed, m, l, k, cap_hi):
    """WMA either raises InfeasibleInstanceError or returns a valid solution."""
    inst = draw_instance(seed, m, l, k, cap_hi)
    if not is_feasible(inst):
        with pytest.raises(InfeasibleInstanceError):
            solve(inst, method="wma")
        return
    sol = solve(inst, method="wma")
    validate_solution(inst, sol)


@COMMON_SETTINGS
@given(
    seed=st.integers(0, 5_000),
    m=st.integers(1, 8),
    l=st.integers(2, 9),
    k=st.integers(1, 4),
)
@example(seed=308, m=4, l=3, k=3).via(
    # Hilbert's bucketing selected 2 of k=3 facilities with total
    # capacity 3 < 4 customers; cover_components used to livelock
    # swapping inside the single component instead of opening the
    # third candidate.
    "discovered failure"
)
def test_property_heuristics_never_beat_exact(seed, m, l, k):
    """No heuristic may return an objective below the MILP optimum."""
    inst = draw_instance(seed, m, l, k, cap_hi=5)
    if not is_feasible(inst):
        return
    exact = solve(inst, method="exact")
    for method in ("wma", "wma-uf", "wma-naive", "hilbert", "random"):
        sol = solve(inst, method=method)
        validate_solution(inst, sol)
        assert sol.objective >= exact.objective - 1e-6


@COMMON_SETTINGS
@given(
    seed=st.integers(0, 5_000),
    m=st.integers(2, 8),
    l=st.integers(3, 10),
)
def test_property_larger_budget_never_hurts_exact(seed, m, l):
    """The exact optimum is monotone non-increasing in k."""
    inst_small = draw_instance(seed, m, l, k=1, cap_hi=6)
    inst_large = MCFSInstance(
        network=inst_small.network,
        customers=inst_small.customers,
        facility_nodes=inst_small.facility_nodes,
        capacities=inst_small.capacities,
        k=min(3, inst_small.l),
    )
    if not is_feasible(inst_small):
        return
    small = solve(inst_small, method="exact")
    large = solve(inst_large, method="exact")
    assert large.objective <= small.objective + 1e-6


@COMMON_SETTINGS
@given(seed=st.integers(0, 5_000), m=st.integers(1, 8))
def test_property_objective_zero_iff_colocated(seed, m):
    """Objective 0 requires every customer to sit on a selected facility."""
    inst = draw_instance(seed, m, l=8, k=4, cap_hi=6)
    if not is_feasible(inst):
        return
    sol = solve(inst, method="wma")
    if sol.objective == 0:
        fac_nodes = {inst.facility_nodes[j] for j in sol.selected}
        assert all(c in fac_nodes for c in inst.customers)
