"""Tests for resumable nearest-facility streams."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.dijkstra import _run, distance_matrix
from repro.network.incremental import NearestFacilityStream, StreamCursor, StreamPool
from repro.obs import metrics
from tests.conftest import (
    build_line_network,
    build_random_network,
    build_two_component_network,
)


class TestStream:
    def test_yields_in_distance_order(self):
        g = build_line_network(10)
        stream = NearestFacilityStream(g, 5, [0, 2, 7, 9])
        found = [stream.facility_at(r) for r in range(4)]
        dists = [d for _, d in found]
        assert dists == sorted(dists)
        assert found[0] == (7, pytest.approx(2.0))

    def test_matches_distance_matrix_order(self):
        g = build_random_network(40, seed=4)
        facilities = [3, 8, 15, 22, 30, 37]
        stream = NearestFacilityStream(g, 0, facilities)
        mat = distance_matrix(g, [0], facilities)[0]
        expected = sorted(
            zip(facilities, mat, strict=True), key=lambda p: (p[1], p[0])
        )
        for rank, (node, dist) in enumerate(expected):
            got = stream.facility_at(rank)
            assert got is not None
            assert got[1] == pytest.approx(dist)

    def test_exhaustion_returns_none(self):
        g = build_line_network(5)
        stream = NearestFacilityStream(g, 0, [2])
        assert stream.facility_at(0) is not None
        assert stream.facility_at(1) is None
        assert stream.distance_at(1) == math.inf

    def test_unreachable_facilities_not_yielded(self):
        g = build_two_component_network()
        stream = NearestFacilityStream(g, 0, [1, 4])
        assert stream.facility_at(0) == (1, pytest.approx(1.0))
        assert stream.facility_at(1) is None

    def test_source_is_facility(self):
        g = build_line_network(5)
        stream = NearestFacilityStream(g, 2, [2, 4])
        assert stream.facility_at(0) == (2, 0.0)

    def test_random_access_is_stable(self):
        g = build_random_network(30, seed=6)
        facilities = list(range(0, 30, 3))
        stream = NearestFacilityStream(g, 1, facilities)
        fifth = stream.facility_at(5)
        first = stream.facility_at(0)
        assert stream.facility_at(5) == fifth
        assert stream.facility_at(0) == first


class TestCursor:
    def test_take_advances_peek_does_not(self):
        g = build_line_network(10)
        cursor = StreamCursor(NearestFacilityStream(g, 0, [2, 5, 8]))
        assert cursor.peek() == (2, pytest.approx(2.0))
        assert cursor.peek() == (2, pytest.approx(2.0))
        assert cursor.take() == (2, pytest.approx(2.0))
        assert cursor.peek() == (5, pytest.approx(5.0))
        assert cursor.rank == 1

    def test_peek_distance_inf_after_exhaustion(self):
        g = build_line_network(4)
        cursor = StreamCursor(NearestFacilityStream(g, 0, [1]))
        cursor.take()
        assert cursor.exhausted
        assert cursor.peek_distance() == math.inf
        assert cursor.take() is None

    def test_drain(self):
        g = build_line_network(10)
        cursor = StreamCursor(NearestFacilityStream(g, 0, [2, 5, 8]))
        assert [n for n, _ in cursor.drain()] == [2, 5, 8]

    def test_drain_limit(self):
        g = build_line_network(10)
        cursor = StreamCursor(NearestFacilityStream(g, 0, [2, 5, 8]))
        assert len(cursor.drain(limit=2)) == 2
        assert cursor.rank == 2

    def test_shared_stream_independent_cursors(self):
        g = build_line_network(10)
        pool = StreamPool(g, [2, 5, 8])
        c1 = pool.cursor_for(0)
        c2 = pool.cursor_for(0)
        assert c1.take() == (2, pytest.approx(2.0))
        assert c1.take() == (5, pytest.approx(5.0))
        # The second cursor still starts from the beginning.
        assert c2.take() == (2, pytest.approx(2.0))
        # And they share one underlying stream object.
        assert len(pool) == 1


class TestPool:
    def test_streams_cached_per_node(self):
        g = build_line_network(10)
        pool = StreamPool(g, [5])
        s1 = pool.stream_for(0)
        s2 = pool.stream_for(0)
        s3 = pool.stream_for(1)
        assert s1 is s2
        assert s1 is not s3
        assert len(pool) == 2

    def test_facility_nodes_exposed(self):
        g = build_line_network(10)
        pool = StreamPool(g, [5, 7])
        assert pool.facility_nodes == (5, 7)

    def test_interleaved_cursors_bounded_by_full_dijkstras(self):
        # The whole point of sharing streams: however many cursors
        # interleave over however many ranks, the pool never does more
        # heap pops in total than one *full* Dijkstra per distinct
        # source would.
        g = build_random_network(40, seed=9)
        facilities = list(range(0, 40, 4))
        sources = [1, 7, 19]

        reg = metrics.Registry()
        with metrics.use(reg):
            pool = StreamPool(g, facilities)
            cursors = [pool.cursor_for(s) for s in sources]
            cursors += [pool.cursor_for(s) for s in sources]  # duplicates
            exhausted = False
            while not exhausted:
                exhausted = True
                for cursor in cursors:
                    if cursor.take() is not None:
                        exhausted = False
        stream_pops = reg.as_dict().get("incremental.pops", 0)

        full_reg = metrics.Registry()
        with metrics.use(full_reg):
            for s in sources:
                _run(g, [s])
        full_pops = full_reg.as_dict()["dijkstra.pops"]

        assert stream_pops <= full_pops


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), source=st.integers(0, 29))
def test_property_stream_order_equals_sorted_distances(seed, source):
    """Stream yields exactly the reachable facilities, sorted by distance."""
    g = build_random_network(30, seed=seed % 20)
    rng = np.random.default_rng(seed)
    facilities = sorted(int(v) for v in rng.choice(30, size=8, replace=False))
    stream = NearestFacilityStream(g, source, facilities)
    got = []
    rank = 0
    while True:
        item = stream.facility_at(rank)
        if item is None:
            break
        got.append(item)
        rank += 1
    mat = distance_matrix(g, [source], facilities)[0]
    reachable = [
        (facilities[j], mat[j]) for j in range(len(facilities)) if np.isfinite(mat[j])
    ]
    assert len(got) == len(reachable)
    got_dists = [d for _, d in got]
    assert got_dists == sorted(got_dists)
    assert sorted(n for n, _ in got) == sorted(n for n, _ in reachable)
    for node, dist in got:
        ref = mat[facilities.index(node)]
        assert abs(dist - ref) < 1e-9
