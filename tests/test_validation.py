"""Tests for solution validation and objective evaluation."""

from __future__ import annotations

import pytest

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.core.validation import (
    check_feasibility,
    evaluate_objective,
    is_feasible,
    validate_solution,
)
from repro.errors import InfeasibleInstanceError, InvalidInstanceError
from tests.conftest import build_line_network, build_two_component_network


def line_instance(**overrides) -> MCFSInstance:
    defaults = dict(
        network=build_line_network(10),
        customers=(1, 3, 8),
        facility_nodes=(0, 4, 9),
        capacities=(2, 2, 2),
        k=2,
    )
    defaults.update(overrides)
    return MCFSInstance(**defaults)


def good_solution() -> MCFSSolution:
    # customers 1,3 -> facility at 4 (d=3+1), customer 8 -> 9 (d=1).
    return MCFSSolution(
        selected=(1, 2), assignment=(1, 1, 2), objective=5.0
    )


class TestEvaluateObjective:
    def test_line_distances(self):
        inst = line_instance()
        assert evaluate_objective(inst, (1, 1, 2)) == pytest.approx(5.0)

    def test_all_to_one(self):
        inst = line_instance(capacities=(9, 9, 9), k=1)
        assert evaluate_objective(inst, (0, 0, 0)) == pytest.approx(1 + 3 + 8)

    def test_wrong_length_rejected(self):
        with pytest.raises(InvalidInstanceError, match="length"):
            evaluate_objective(line_instance(), (0, 0))

    def test_bad_index_rejected(self):
        with pytest.raises(InvalidInstanceError, match="facility index"):
            evaluate_objective(line_instance(), (0, 0, 7))

    def test_unreachable_assignment_rejected(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(5, 5),
            k=2,
        )
        with pytest.raises(InfeasibleInstanceError, match="reach"):
            evaluate_objective(inst, (0, 0))


class TestValidateSolution:
    def test_accepts_valid(self):
        validate_solution(line_instance(), good_solution())

    def test_rejects_duplicate_selected(self):
        sol = MCFSSolution(selected=(1, 1), assignment=(1, 1, 1), objective=1.0)
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            validate_solution(line_instance(), sol)

    def test_rejects_too_many_selected(self):
        sol = MCFSSolution(
            selected=(0, 1, 2), assignment=(0, 1, 2), objective=3.0
        )
        with pytest.raises(InvalidInstanceError, match="k="):
            validate_solution(line_instance(), sol)

    def test_rejects_out_of_range_selected(self):
        sol = MCFSSolution(selected=(7,), assignment=(7, 7, 7), objective=0.0)
        with pytest.raises(InvalidInstanceError, match="out of range"):
            validate_solution(line_instance(), sol)

    def test_rejects_assignment_to_unselected(self):
        sol = MCFSSolution(selected=(1,), assignment=(1, 1, 2), objective=5.0)
        with pytest.raises(InvalidInstanceError, match="unselected"):
            validate_solution(line_instance(), sol)

    def test_rejects_capacity_violation(self):
        inst = line_instance(capacities=(2, 1, 2))
        sol = MCFSSolution(selected=(1, 2), assignment=(1, 1, 2), objective=5.0)
        with pytest.raises(InvalidInstanceError, match="capacity"):
            validate_solution(inst, sol)

    def test_rejects_wrong_objective(self):
        sol = MCFSSolution(selected=(1, 2), assignment=(1, 1, 2), objective=999.0)
        with pytest.raises(InvalidInstanceError, match="objective"):
            validate_solution(line_instance(), sol)

    def test_rejects_wrong_assignment_length(self):
        sol = MCFSSolution(selected=(1,), assignment=(1, 1), objective=4.0)
        with pytest.raises(InvalidInstanceError, match="length"):
            validate_solution(line_instance(), sol)


class TestFeasibility:
    def test_feasible_instance_passes(self):
        check_feasibility(line_instance())
        assert is_feasible(line_instance())

    def test_budget_below_component_minimum(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(5, 5),
            k=1,
        )
        with pytest.raises(InfeasibleInstanceError, match="budget"):
            check_feasibility(inst)
        assert not is_feasible(inst)

    def test_component_capacity_shortfall(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 2, 3),
            facility_nodes=(1, 4),
            capacities=(2, 1),
            k=2,
        )
        # Second component: 1 customer, capacity 1 -- fine; first
        # component: 3 customers, capacity 2 -- impossible.
        with pytest.raises(InfeasibleInstanceError, match="capacity"):
            check_feasibility(inst)

    def test_tight_but_feasible(self):
        inst = line_instance(capacities=(1, 1, 1), k=3)
        check_feasibility(inst)
