"""Tests for the greedy set-cover routine (Algorithm 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.set_cover import check_cover


def reference_greedy(sigma, m, k, last_used, tie_breaking="lru"):
    """Straightforward (non-lazy) greedy reference implementation."""
    covered = set()
    selected = []
    candidates = set(range(len(sigma)))
    while len(selected) < k:
        best = None
        best_key = None
        for j in sorted(candidates):
            gain = len(sigma[j] - covered)
            if gain == 0:
                continue
            tie = last_used[j] if tie_breaking == "lru" else 0
            key = (-gain, tie, j)
            if best_key is None or key < best_key:
                best, best_key = j, key
        if best is None:
            break
        selected.append(best)
        candidates.discard(best)
        covered |= sigma[best]
        if len(covered) == m:
            break
    return selected, covered


class TestCheckCover:
    def test_full_cover_detected(self):
        sigma = [{0, 1}, {2}, set()]
        result = check_cover(sigma, 3, 2, [-1, -1, -1])
        assert result.fully_covered
        assert sorted(result.selected) == [0, 1]
        assert result.covered == [True, True, True]

    def test_partial_cover(self):
        sigma = [{0}, {1}, set()]
        result = check_cover(sigma, 3, 2, [-1, -1, -1])
        assert not result.fully_covered
        assert result.covered == [True, True, False]

    def test_marginal_gain_preferred_over_raw_size(self):
        # Facility 0 covers {0,1,2}; facility 1 covers {0,1,3}; facility 2
        # covers {3}.  After selecting 0, facility 1's marginal gain is 1,
        # tying facility 2 -- lower last_used wins.
        sigma = [{0, 1, 2}, {0, 1, 3}, {3}]
        result = check_cover(sigma, 4, 2, [-1, 5, 0])
        assert result.selected[0] == 0
        assert result.selected[1] == 2  # least recently used wins the tie

    def test_lru_tie_breaking(self):
        sigma = [{0}, {1}]
        result = check_cover(sigma, 3, 1, [3, 1])
        assert result.selected == [1]

    def test_index_tie_breaking(self):
        sigma = [{0}, {1}]
        result = check_cover(sigma, 3, 1, [3, 1], tie_breaking="index")
        assert result.selected == [0]

    def test_unknown_tie_breaking_rejected(self):
        with pytest.raises(ValueError):
            check_cover([{0}], 1, 1, [-1], tie_breaking="bogus")

    def test_cost_tie_breaking(self):
        # Equal gains; the cheaper service cluster wins.
        sigma = [{0}, {1}]
        result = check_cover(
            sigma, 3, 1, [-1, -1], tie_breaking="cost", costs=[5.0, 2.0]
        )
        assert result.selected == [1]

    def test_cost_tie_breaking_requires_costs(self):
        with pytest.raises(ValueError, match="costs"):
            check_cover([{0}], 1, 1, [-1], tie_breaking="cost")

    def test_cost_never_overrides_gain(self):
        # A bigger gain beats any cost.
        sigma = [{0, 1}, {2}]
        result = check_cover(
            sigma, 3, 1, [-1, -1], tie_breaking="cost", costs=[100.0, 0.0]
        )
        assert result.selected == [0]

    def test_zero_gain_facilities_skipped(self):
        sigma = [{0, 1}, set(), set()]
        result = check_cover(sigma, 2, 3, [-1, -1, -1])
        assert result.selected == [0]
        assert result.fully_covered

    def test_budget_respected(self):
        sigma = [{0}, {1}, {2}, {3}]
        result = check_cover(sigma, 4, 2, [-1] * 4)
        assert len(result.selected) == 2
        assert not result.fully_covered

    def test_empty_sigma(self):
        result = check_cover([set(), set()], 2, 1, [-1, -1])
        assert result.selected == []
        assert not result.fully_covered

    def test_greedy_picks_biggest_first(self):
        sigma = [{0}, {1, 2, 3}, {4, 5}]
        result = check_cover(sigma, 6, 3, [-1] * 3)
        assert result.selected[0] == 1
        assert result.selected[1] == 2
        assert result.selected[2] == 0


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    n_fac=st.integers(1, 8),
    m=st.integers(1, 12),
    k=st.integers(1, 8),
)
def test_property_lazy_greedy_matches_reference(data, n_fac, m, k):
    """The lazy-heap implementation equals plain greedy selection."""
    sigma = [
        set(
            data.draw(
                st.lists(st.integers(0, m - 1), max_size=m, unique=True)
            )
        )
        for _ in range(n_fac)
    ]
    last_used = data.draw(
        st.lists(
            st.integers(-1, 5), min_size=n_fac, max_size=n_fac
        )
    )
    result = check_cover(sigma, m, k, last_used)
    ref_selected, ref_covered = reference_greedy(sigma, m, k, last_used)
    assert result.selected == ref_selected
    assert set(i for i, c in enumerate(result.covered) if c) == ref_covered
    assert result.fully_covered == (len(ref_covered) == m)
