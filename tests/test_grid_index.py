"""Tests for the uniform-grid spatial index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.grid_index import GridIndex


def brute_within(points, x, y, radius):
    d2 = ((points - np.array([x, y])) ** 2).sum(axis=1)
    return sorted(np.flatnonzero(d2 <= radius * radius).tolist())


class TestRadiusQueries:
    def test_simple(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        index = GridIndex(pts, cell_size=1.0)
        assert sorted(index.within_radius(0.0, 0.0, 1.5)) == [0, 1]
        assert index.within_radius(0.0, 0.0, 0.5) == [0]

    def test_inclusive_boundary(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        index = GridIndex(pts, cell_size=1.0)
        assert sorted(index.within_radius(0.0, 0.0, 2.0)) == [0, 1]

    def test_radius_larger_than_cell(self):
        rng = np.random.default_rng(0)
        pts = rng.random((100, 2)) * 10
        index = GridIndex(pts, cell_size=0.5)
        got = sorted(index.within_radius(5.0, 5.0, 3.0))
        assert got == brute_within(pts, 5.0, 5.0, 3.0)

    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((1, 2)), cell_size=0.0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((3,)), cell_size=1.0)


class TestPairsWithin:
    def test_each_pair_once(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [0.0, 0.5], [9.0, 9.0]])
        index = GridIndex(pts, cell_size=1.0)
        pairs = list(index.pairs_within(1.0))
        keys = [(i, j) for i, j, _ in pairs]
        assert len(keys) == len(set(keys))
        assert sorted(keys) == [(0, 1), (0, 2), (1, 2)]
        for i, j, d in pairs:
            assert d == pytest.approx(float(np.hypot(*(pts[i] - pts[j]))))

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        pts = rng.random((80, 2))
        index = GridIndex(pts, cell_size=0.15)
        got = sorted((i, j) for i, j, _ in index.pairs_within(0.15))
        expected = []
        for i in range(80):
            for j in range(i + 1, 80):
                if np.hypot(*(pts[i] - pts[j])) <= 0.15:
                    expected.append((i, j))
        assert got == sorted(expected)


class TestNearest:
    def test_nearest_simple(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        index = GridIndex(pts, cell_size=1.0)
        idx, dist = index.nearest(1.0, 1.0)
        assert idx == 0
        assert dist == pytest.approx(np.sqrt(2))

    def test_nearest_far_query(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        index = GridIndex(pts, cell_size=0.5)
        idx, _ = index.nearest(100.0, 100.0)
        assert idx == 1

    def test_nearest_matches_brute_force(self):
        rng = np.random.default_rng(9)
        pts = rng.random((60, 2))
        index = GridIndex(pts, cell_size=0.2)
        for _ in range(25):
            q = rng.random(2) * 1.4 - 0.2
            idx, dist = index.nearest(q[0], q[1])
            d2 = ((pts - q) ** 2).sum(axis=1)
            assert dist == pytest.approx(np.sqrt(d2.min()))
            assert d2[idx] == pytest.approx(d2.min())

    def test_empty_index_raises(self):
        index = GridIndex(np.zeros((0, 2)), cell_size=1.0)
        with pytest.raises(ValueError):
            index.nearest(0.0, 0.0)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    radius=st.floats(0.01, 0.5),
    cell=st.floats(0.05, 0.4),
)
def test_property_radius_queries_match_brute_force(seed, radius, cell):
    rng = np.random.default_rng(seed)
    pts = rng.random((40, 2))
    index = GridIndex(pts, cell_size=cell)
    q = rng.random(2)
    got = sorted(index.within_radius(q[0], q[1], radius))
    assert got == brute_within(pts, q[0], q[1], radius)
