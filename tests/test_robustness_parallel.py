"""Tests for the robustness analysis and the parallel sweep runner."""

from __future__ import annotations

import pytest

from repro import solve
from repro.bench.robustness import (
    DriftPoint,
    drift_study,
    reassignment_cost,
    selection_regret,
)
from repro.bench.parallel import parallel_rows
from repro.bench.reporting import sparkline
from repro.core.instance import MCFSInstance
from repro.datagen.instances import uniform_instance
from repro.errors import MatchingError
from tests.conftest import build_grid_network, build_random_instance


def grid_instance() -> MCFSInstance:
    return MCFSInstance(
        network=build_grid_network(5, 5),
        customers=(0, 4, 20, 24),
        facility_nodes=(6, 12, 18),
        capacities=(3, 3, 3),
        k=2,
    )


class TestReassignment:
    def test_same_customers_match_solution(self):
        inst = grid_instance()
        sol = solve(inst, method="wma")
        cost = reassignment_cost(inst, sol.selected, inst.customers)
        assert cost == pytest.approx(sol.objective)

    def test_infeasible_population_raises(self):
        inst = grid_instance()
        sol = solve(inst, method="wma")
        too_many = list(inst.customers) * 3  # 12 > capacity 6
        with pytest.raises(MatchingError):
            reassignment_cost(inst, sol.selected, too_many)

    def test_zero_regret_without_drift(self):
        inst = grid_instance()
        sol = solve(inst, method="exact")
        regret = selection_regret(inst, sol.selected, inst.customers)
        # Fresh WMA cannot beat the exact selection.
        assert regret <= 1e-9


class TestDriftStudy:
    def test_points_structure(self):
        inst = build_random_instance(2, cap_range=(4, 8))
        sol = solve(inst, method="wma")
        points = drift_study(
            inst, sol, fractions=(0.0, 0.5), seed=1
        )
        assert [p.drift_fraction for p in points] == [0.0, 0.5]
        assert isinstance(points[0], DriftPoint)
        # Zero drift: stale equals the solution's own objective.
        assert points[0].stale_cost == pytest.approx(sol.objective)
        assert points[0].regret is not None
        assert points[0].regret >= -1e-6

    def test_regret_nonnegative_when_fresh_is_exact(self):
        inst = build_random_instance(3, cap_range=(4, 8))
        sol = solve(inst, method="wma")
        from repro.baselines.exact import solve_exact

        points = drift_study(
            inst, sol, fractions=(0.5,), seed=2, solver=solve_exact
        )
        if points[0].regret is not None:
            assert points[0].regret >= -1e-6


class TestParallelRows:
    def test_matches_sequential(self):
        cases = [
            ({"n": 96}, uniform_instance(96, seed=1)),
            ({"n": 128}, uniform_instance(128, seed=1)),
        ]
        rows = parallel_rows(cases, ["wma", "hilbert"], max_workers=2)
        assert len(rows) == 4
        by_key = {(r.method, r.params["n"]): r for r in rows}
        # Cross-check one value against a direct solve.
        direct = solve(cases[0][1], method="wma")
        assert by_key[("wma", 96)].objective == pytest.approx(
            direct.objective
        )
        assert all(r.status == "ok" for r in rows)

    def test_exact_kwargs_forwarded(self):
        cases = [({"n": 96}, uniform_instance(96, seed=2))]
        rows = parallel_rows(
            cases, ["exact"], max_workers=1, exact_time_limit=30.0
        )
        assert rows[0].status in ("ok", "timeout")


class TestSparkline:
    def test_ramp(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""
