"""Run the doctests embedded in public docstrings.

Documented examples must stay runnable; this keeps the package docstring
quickstart and other inline examples honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro


MODULES_WITH_DOCTESTS = [repro]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "expected at least one doctest"
