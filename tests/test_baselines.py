"""Tests for the Hilbert, BRNN, WMA Naive, and random baselines."""

from __future__ import annotations

import pytest

from repro.baselines.brnn import _first_facility, solve_brnn
from repro.baselines.hilbert import solve_hilbert
from repro.baselines.random_select import solve_random
from repro.baselines.wma_naive import solve_wma_naive
from repro.core.instance import MCFSInstance
from repro.core.validation import validate_solution
from repro.core.wma import solve_wma
from repro.errors import InfeasibleInstanceError
from repro.network.dijkstra import distance_matrix
from tests.conftest import (
    build_grid_network,
    build_line_network,
    build_random_instance,
    build_two_component_network,
)


ALL_BASELINES = [solve_hilbert, solve_brnn, solve_wma_naive, solve_random]


@pytest.mark.parametrize("solver", ALL_BASELINES)
class TestAllBaselines:
    def test_valid_solutions_on_random_instances(self, solver):
        for seed in range(6):
            inst = build_random_instance(seed, cap_range=(3, 6))
            sol = solver(inst)
            validate_solution(inst, sol)

    def test_valid_on_disconnected_network(self, solver):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 3, 4),
            facility_nodes=(2, 5),
            capacities=(2, 2),
            k=2,
        )
        sol = solver(inst)
        validate_solution(inst, sol)

    def test_infeasible_raises(self, solver):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(5, 5),
            k=1,
        )
        with pytest.raises(InfeasibleInstanceError):
            solver(inst)

    def test_runtime_recorded(self, solver):
        inst = build_random_instance(0, cap_range=(3, 6))
        sol = solver(inst)
        assert sol.runtime_sec > 0


class TestHilbert:
    def test_grid_selection_reasonable(self):
        g = build_grid_network(6, 6)
        inst = MCFSInstance(
            network=g,
            customers=tuple(range(0, 36, 3)),
            facility_nodes=tuple(range(36)),
            capacities=(4,) * 36,
            k=4,
        )
        sol = solve_hilbert(inst)
        validate_solution(inst, sol)
        # Beat the trivial everything-to-one-corner bound comfortably.
        worst = distance_matrix(g, list(inst.customers), [0]).sum()
        assert sol.objective < worst

    def test_nonuniform_capacity_repair(self):
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(0, 1, 2, 3, 4, 5),
            facility_nodes=(2, 9, 11),
            capacities=(1, 6, 6),
            k=2,
        )
        sol = solve_hilbert(inst)
        validate_solution(inst, sol)

    def test_per_component_budgeting(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 2, 3),
            facility_nodes=(0, 1, 2, 4, 5),
            capacities=(2, 2, 2, 2, 2),
            k=3,
        )
        sol = solve_hilbert(inst)
        validate_solution(inst, sol)
        # Component B (one customer) must receive at least one facility.
        fac_nodes = [inst.facility_nodes[j] for j in sol.selected]
        assert any(node >= 3 for node in fac_nodes)

    def test_meta_algorithm(self):
        inst = build_random_instance(1, cap_range=(3, 6))
        assert solve_hilbert(inst).meta["algorithm"] == "hilbert"


class TestBrnn:
    def test_first_facility_is_one_median(self):
        inst = MCFSInstance(
            network=build_line_network(11),
            customers=(0, 5, 10),
            facility_nodes=(0, 5, 10),
            capacities=(5, 5, 5),
            k=2,
        )
        assert _first_facility(inst) == 1  # node 5 minimizes summed distance

    def test_first_facility_prefers_reaching_more_customers(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 3),
            facility_nodes=(2, 4),
            capacities=(5, 5),
            k=2,
        )
        # Facility 0 (node 2) reaches two customers; facility 1 only one.
        assert _first_facility(inst) == 0

    def test_selects_k_distinct(self):
        inst = build_random_instance(2, cap_range=(3, 6))
        sol = solve_brnn(inst)
        assert len(set(sol.selected)) == len(sol.selected) == inst.k

    def test_meta_algorithm(self):
        inst = build_random_instance(1, cap_range=(3, 6))
        assert solve_brnn(inst).meta["algorithm"] == "brnn"


class TestWmaNaive:
    def test_deterministic_given_seed(self):
        inst = build_random_instance(5, cap_range=(3, 6))
        a = solve_wma_naive(inst, seed=3)
        b = solve_wma_naive(inst, seed=3)
        assert a.selected == b.selected
        assert a.objective == pytest.approx(b.objective)

    def test_never_better_than_wma_by_much(self):
        """Naive may tie WMA but should not beat it systematically."""
        wins = 0
        for seed in range(8):
            inst = build_random_instance(seed, cap_range=(3, 6))
            naive = solve_wma_naive(inst)
            wma = solve_wma(inst)
            if naive.objective < wma.objective - 1e-9:
                wins += 1
        assert wins <= 3

    def test_meta_reports_iterations(self):
        inst = build_random_instance(1, cap_range=(3, 6))
        sol = solve_wma_naive(inst)
        assert sol.meta["iterations"] >= 1


class TestRandomBaseline:
    def test_seed_changes_selection(self):
        inst = build_random_instance(0, l=12, k=4, cap_range=(3, 6))
        selections = {solve_random(inst, seed=s).selected for s in range(6)}
        assert len(selections) > 1

    def test_wma_beats_random_on_average(self):
        wma_total = rand_total = 0.0
        for seed in range(8):
            inst = build_random_instance(seed, n=40, m=10, l=12, k=3,
                                         cap_range=(4, 8))
            wma_total += solve_wma(inst).objective
            rand_total += solve_random(inst, seed=seed).objective
        assert wma_total < rand_total
