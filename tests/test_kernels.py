"""Equivalence tests pinning the workspace kernel to the legacy loop.

The preallocated :class:`~repro.network.kernels.DijkstraWorkspace` must
produce *bit-identical* distances to the per-call reference ``_run`` --
same floats, valid parents, and the same ``dijkstra.*`` counter totals --
on every graph shape the solvers encounter: undirected, directed, and
disconnected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.dijkstra import (
    _run,
    distance_matrix,
    eccentricity_bound,
    multi_source_lengths,
)
from repro.network.graph import Network
from repro.network.kernels import DijkstraWorkspace, many_source_lengths, workspace_for
from repro.obs import metrics
from tests.conftest import build_random_network, build_two_component_network


def build_random_directed_network(n: int, seed: int = 0) -> Network:
    """Random directed graph: each node gets a few outgoing arcs."""
    rng = np.random.default_rng(seed)
    edges = []
    for u in range(n):
        for v in rng.choice(n, size=3, replace=False):
            v = int(v)
            if v != u:
                edges.append((u, v, float(rng.uniform(0.1, 2.0))))
    return Network(n, edges, directed=True)


def kernel_result(network, sources, **kwargs):
    """Run the kernel and expose (dist, parent, settled) arrays."""
    ws = workspace_for(network)
    ws.run(sources, **kwargs)
    return ws.dist_array(), ws.parent_array(), list(ws.settled())


def assert_parents_valid(network, dist, parent, sources):
    """Each non-source reached node's parent edge closes its distance."""
    lookup = {
        (u, v): w
        for u, v, w in zip(
            np.repeat(
                np.arange(network.n_nodes),
                np.diff(network.csr[0]),
            ),
            network.csr[1],
            network.csr[2],
            strict=True,
        )
    }
    source_set = {int(s) for s in sources}
    for v in range(network.n_nodes):
        if not np.isfinite(dist[v]) or v in source_set:
            assert parent[v] == -1 or v in source_set
            continue
        u = int(parent[v])
        assert u >= 0, f"reached node {v} has no parent"
        w = lookup[(u, v)]
        assert dist[v] == dist[u] + w


GRAPHS = [
    pytest.param(lambda: build_random_network(60, seed=3), id="undirected"),
    pytest.param(
        lambda: build_random_directed_network(50, seed=4), id="directed"
    ),
    pytest.param(lambda: build_two_component_network(), id="disconnected"),
]


class TestKernelMatchesLegacy:
    @pytest.mark.parametrize("make", GRAPHS)
    def test_single_source_bit_identical(self, make):
        network = make()
        for source in range(0, network.n_nodes, 7):
            legacy = _run(network, [source])
            dist, parent, settled = kernel_result(network, [source])
            assert np.array_equal(legacy.dist, dist)  # inf==inf, bitwise
            assert settled == legacy.settled
            assert_parents_valid(network, dist, parent, [source])

    @pytest.mark.parametrize("make", GRAPHS)
    def test_multi_source_bit_identical(self, make):
        network = make()
        sources = list(range(0, network.n_nodes, 5))
        legacy = _run(network, sources)
        dist, parent, settled = kernel_result(network, sources)
        assert np.array_equal(legacy.dist, dist)
        assert settled == legacy.settled
        assert_parents_valid(network, dist, parent, sources)

    @pytest.mark.parametrize("make", GRAPHS)
    def test_early_exit_and_radius(self, make):
        network = make()
        targets = set(range(0, network.n_nodes, 4))
        legacy = _run(network, [0], targets=targets, radius=2.5)
        ws = workspace_for(network)
        ws.run([0], targets=targets, radius=2.5)
        for t in sorted(targets):
            assert ws.dist_of(t) == legacy.dist[t]
        assert list(ws.settled()) == legacy.settled

    @pytest.mark.parametrize("make", GRAPHS)
    def test_counter_totals_match(self, make):
        network = make()
        sources = [0, network.n_nodes - 1]

        legacy_reg = metrics.Registry()
        with metrics.use(legacy_reg):
            for s in sources:
                _run(network, [s])
        kernel_reg = metrics.Registry()
        ws = DijkstraWorkspace(network)
        with metrics.use(kernel_reg):
            for s in sources:
                ws.run([s])

        legacy_counts = legacy_reg.as_dict()
        kernel_counts = kernel_reg.as_dict()
        for key in (
            "dijkstra.runs",
            "dijkstra.pops",
            "dijkstra.relaxations",
            "dijkstra.settled",
        ):
            assert kernel_counts[key] == legacy_counts[key]
        # The kernel additionally marks its runs so reports can tell the
        # two implementations apart.
        assert kernel_counts["dijkstra.kernel_runs"] == len(sources)
        assert "dijkstra.kernel_runs" not in legacy_counts

    def test_empty_target_set_stops_like_legacy(self):
        # Legacy quirk: an *empty* target set stops after the first
        # settled node; the countdown rewrite must preserve that.
        network = build_random_network(30, seed=5)
        legacy = _run(network, [0], targets=set())
        dist, _, settled = kernel_result(network, [0], targets=set())
        assert settled == legacy.settled == [0]
        assert np.array_equal(legacy.dist, dist)

    def test_max_settled(self):
        network = build_random_network(40, seed=6)
        legacy = _run(network, [0], max_settled=7)
        _, _, settled = kernel_result(network, [0], max_settled=7)
        assert settled == legacy.settled
        assert len(settled) == 7


class TestWorkspaceReuse:
    def test_generation_bumps_and_results_reset(self):
        network = build_two_component_network()
        ws = DijkstraWorkspace(network)
        g1 = ws.run([0])
        assert ws.dist_of(1) == 1.0
        assert ws.dist_of(3) == np.inf  # other component untouched
        g2 = ws.run([3])
        assert g2 == g1 + 1
        # Old run's entries are invalidated by the stamp, not cleared.
        assert ws.dist_of(0) == np.inf
        assert ws.dist_of(4) == 1.0
        assert ws.parent_of(0) == -1

    def test_workspace_for_is_cached_per_network(self):
        a = build_random_network(10, seed=0)
        b = build_random_network(10, seed=0)
        assert workspace_for(a) is workspace_for(a)
        assert workspace_for(a) is not workspace_for(b)

    def test_repeated_runs_stay_identical(self):
        network = build_random_network(50, seed=7)
        ws = DijkstraWorkspace(network)
        ws.run([2])
        first = ws.dist_array()
        for _ in range(3):
            ws.run([11])
            ws.run([2])
        assert np.array_equal(ws.dist_array(), first)


class TestManySourceLengths:
    def test_matrix_against_legacy_rows(self):
        network = build_random_network(45, seed=8)
        sources = [0, 9, 17, 44]
        targets = [3, 12, 30]
        got = many_source_lengths(
            network, [[s] for s in sources], targets=targets
        )
        assert got.shape == (4, 3)
        for i, s in enumerate(sources):
            legacy = _run(network, [s], targets=set(targets))
            assert np.array_equal(got[i], legacy.dist[targets])

    def test_full_rows_without_targets(self):
        network = build_two_component_network()
        got = many_source_lengths(network, [[0], [3], [0, 3]])
        assert got.shape == (3, network.n_nodes)
        assert np.array_equal(
            got[2], np.minimum(got[0], got[1])
        )  # multi-source = min over components


class TestEntryPointsDelegate:
    def test_distance_matrix_marks_kernel_runs(self):
        network = build_random_network(30, seed=9)
        reg = metrics.Registry()
        with metrics.use(reg):
            distance_matrix(network, [0, 5], [1, 2, 3])
        counts = reg.as_dict()
        assert counts["dijkstra.kernel_runs"] == 2
        assert counts["dijkstra.runs"] == 2

    def test_multi_source_lengths_matches_legacy(self):
        network = build_random_network(30, seed=10)
        sources = [1, 8, 21]
        got = multi_source_lengths(network, sources)
        legacy = _run(network, sources)
        assert np.array_equal(got.dist, legacy.dist)
        assert got.settled == legacy.settled

    def test_eccentricity_bound_matches_max_finite(self):
        network = build_random_network(35, seed=11)
        legacy = _run(network, [0])
        finite = legacy.dist[np.isfinite(legacy.dist)]
        assert eccentricity_bound(network, 0) == float(finite.max())
