"""Parallel fan-out correctness: pool results must equal serial bit-for-bit.

The :class:`~repro.network.parallel.ParallelDistanceEngine` ships CSR
arrays to workers through shared memory and fans source chunks /
component sweeps across a process pool.  These tests force the pool on
(thresholds lowered to 1) and pin its output against the serial kernel:
identical distances, identical merged ``dijkstra.*`` counter totals, and
identical solver objectives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.brnn import solve_brnn
from repro.baselines.exact import solve_exact
from repro.baselines.kmedian_ls import solve_kmedian_ls
from repro.network import ch, oracle
from repro.network.dijkstra import distance_matrix, multi_source_lengths
from repro.network.parallel import (
    MIN_PARALLEL_SOURCES,
    MIN_PARALLEL_WORK,
    WORKERS_ENV_VAR,
    ParallelDistanceEngine,
    resolve_workers,
)
from repro.obs import metrics
from tests.conftest import (
    build_random_instance,
    build_random_network,
    build_two_component_network,
)


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert resolve_workers(None) == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_malformed_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        assert resolve_workers(None) == 1

    def test_clamped_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-5) == 1


class TestFallbackThresholds:
    def test_small_calls_stay_serial(self):
        network = build_random_network(20, seed=0)
        engine = ParallelDistanceEngine(network, 2)
        assert not engine.should_parallelize(2)  # below min_sources
        assert not engine.should_parallelize(100)  # below min_work
        reg = metrics.Registry()
        with metrics.use(reg), engine:
            engine.distance_matrix([0, 1], [2, 3])
        counts = reg.as_dict()
        assert counts["parallel.fallbacks"] == 1
        assert "parallel.tasks" not in counts
        assert engine._pool is None  # pool never started

    def test_thresholds_scale_with_work(self):
        network = build_random_network(20, seed=0)
        engine = ParallelDistanceEngine(network, 2)
        big_enough = max(
            MIN_PARALLEL_SOURCES,
            -(-MIN_PARALLEL_WORK // network.n_nodes),
        )
        assert engine.should_parallelize(big_enough)

    def test_serial_worker_count_never_parallelizes(self):
        network = build_random_network(20, seed=0)
        engine = ParallelDistanceEngine(network, 1)
        assert not engine.should_parallelize(10**9)


@pytest.fixture
def forced_engine_network():
    """A network plus an engine whose thresholds always parallelize."""
    network = build_random_network(60, seed=1)
    engine = ParallelDistanceEngine(network, 2, min_sources=1, min_work=1)
    yield network, engine
    engine.close()


class TestParallelEqualsSerial:
    def test_distance_matrix_bit_identical(self, forced_engine_network):
        network, engine = forced_engine_network
        sources = list(range(0, 60, 3))
        targets = list(range(1, 60, 7))
        serial = distance_matrix(network, sources, targets)
        fanned = engine.distance_matrix(sources, targets)
        assert np.array_equal(serial, fanned)

    def test_multi_source_per_component(self):
        network = build_two_component_network()
        engine = ParallelDistanceEngine(
            network, 2, min_sources=1, min_work=1
        )
        with engine:
            dist, parent, settled = engine.multi_source_lengths([0, 3])
        serial = multi_source_lengths(network, [0, 3])
        assert np.array_equal(dist, serial.dist)
        assert np.array_equal(parent, serial.parent)
        assert sorted(settled) == sorted(serial.settled)

    def test_counter_totals_worker_count_independent(
        self, forced_engine_network
    ):
        network, engine = forced_engine_network
        sources = list(range(0, 60, 4))
        targets = [1, 2, 3]

        serial_reg = metrics.Registry()
        with metrics.use(serial_reg):
            distance_matrix(network, sources, targets)
        fanned_reg = metrics.Registry()
        with metrics.use(fanned_reg):
            engine.distance_matrix(sources, targets)

        serial_counts = serial_reg.as_dict()
        fanned_counts = fanned_reg.as_dict()
        for key in (
            "dijkstra.runs",
            "dijkstra.kernel_runs",
            "dijkstra.pops",
            "dijkstra.relaxations",
            "dijkstra.settled",
        ):
            assert fanned_counts[key] == serial_counts[key]
        assert fanned_counts["parallel.tasks"] >= 1

    def test_workers_kwarg_on_entry_points(self, forced_engine_network):
        # The public entry points accept workers=; with thresholds at
        # their defaults these calls fall back to the serial kernel, so
        # the result must be unchanged.
        network, _ = forced_engine_network
        sources, targets = [0, 5, 10], [1, 2]
        assert np.array_equal(
            distance_matrix(network, sources, targets),
            distance_matrix(network, sources, targets, workers=2),
        )
        assert np.array_equal(
            multi_source_lengths(network, sources).dist,
            multi_source_lengths(network, sources, workers=2).dist,
        )


class TestParallelUnderCHOracle:
    """Workers must ride the pre-forked hierarchy, bit-identically."""

    def test_distance_matrix_bit_identical_and_bucketed(self):
        network = build_random_network(60, seed=1)
        hierarchy = ch.ContractionHierarchy.build(network)
        sources = list(range(0, 60, 3))
        targets = list(range(1, 60, 7))
        serial = distance_matrix(network, sources, targets)
        reg = metrics.Registry()
        with oracle.use(hierarchy), ParallelDistanceEngine(
            network, 2, min_sources=1, min_work=1
        ) as engine:
            with metrics.use(reg):
                fanned = engine.distance_matrix(sources, targets)
        assert np.array_equal(serial, fanned)
        counts = reg.as_dict()
        # Worker chunks ran the bucket path: merged ch.* counters are
        # nonzero and no kernel Dijkstra ever ran.
        assert counts["ch.upward_settles"] > 0
        assert counts.get("dijkstra.kernel_runs", 0) == 0
        assert counts["parallel.tasks"] >= 1

    def test_solver_objective_identical_under_ch_workers(self):
        inst = build_random_instance(6, cap_range=(3, 6))
        serial = solve_brnn(inst)
        hierarchy = ch.ContractionHierarchy.build(inst.network)
        with oracle.use(hierarchy):
            fanned = solve_brnn(inst, workers=2)
        assert fanned.objective == serial.objective
        assert fanned.selected == serial.selected


class TestSolverObjectivesUnderWorkers:
    """workers= must never change what a solver computes."""

    def test_exact_objective_identical(self):
        inst = build_random_instance(3, cap_range=(3, 6))
        serial = solve_exact(inst)
        fanned = solve_exact(inst, workers=2)
        assert fanned.objective == serial.objective
        assert fanned.selected == serial.selected

    def test_brnn_objective_identical(self):
        inst = build_random_instance(4, cap_range=(3, 6))
        serial = solve_brnn(inst)
        fanned = solve_brnn(inst, workers=2)
        assert fanned.objective == serial.objective
        assert fanned.selected == serial.selected

    def test_kmedian_objective_identical(self):
        inst = build_random_instance(5, cap_range=(3, 6))
        serial = solve_kmedian_ls(inst, seed=1)
        fanned = solve_kmedian_ls(inst, seed=1, workers=2)
        assert fanned.objective == serial.objective
        assert fanned.selected == serial.selected


class TestEngineLifecycle:
    def test_close_is_idempotent_and_releases_shm(
        self, forced_engine_network
    ):
        network, engine = forced_engine_network
        engine.distance_matrix(list(range(10)), [0, 1])
        assert engine._pool is not None
        engine.close()
        assert engine._pool is None
        assert engine._shm_blocks == []
        engine.close()  # second close is a no-op

    def test_context_manager_closes(self):
        network = build_random_network(30, seed=2)
        with ParallelDistanceEngine(
            network, 2, min_sources=1, min_work=1
        ) as engine:
            engine.distance_matrix(list(range(8)), [0])
        assert engine._pool is None
