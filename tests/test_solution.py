"""Tests for the solution data model."""

from __future__ import annotations

from repro.core.solution import MCFSSolution


class TestSolution:
    def test_coercion(self):
        sol = MCFSSolution(
            selected=[1.0, 2], assignment=[1, 1, 2], objective="5"
        )
        assert sol.selected == (1, 2)
        assert sol.assignment == (1, 1, 2)
        assert sol.objective == 5.0

    def test_algorithm_and_runtime_from_meta(self):
        sol = MCFSSolution(
            selected=(0,),
            assignment=(0,),
            objective=1.0,
            meta={"algorithm": "wma", "runtime_sec": 2.5},
        )
        assert sol.algorithm == "wma"
        assert sol.runtime_sec == 2.5

    def test_defaults_without_meta(self):
        sol = MCFSSolution(selected=(0,), assignment=(0,), objective=1.0)
        assert sol.algorithm == "unknown"
        assert sol.runtime_sec == 0.0

    def test_load_per_facility(self):
        sol = MCFSSolution(
            selected=(0, 3), assignment=(0, 0, 3), objective=1.0
        )
        assert sol.load_per_facility() == {0: 2, 3: 1}

    def test_load_counts_unused_selected(self):
        sol = MCFSSolution(selected=(0, 3), assignment=(0, 0), objective=1.0)
        assert sol.load_per_facility() == {0: 2, 3: 0}

    def test_summary_row(self):
        sol = MCFSSolution(
            selected=(0, 3),
            assignment=(0, 0, 3),
            objective=12.3456,
            meta={"algorithm": "hilbert", "runtime_sec": 0.5},
        )
        row = sol.summary_row()
        assert row["algorithm"] == "hilbert"
        assert row["objective"] == 12.35
        assert row["facilities_used"] == 2

    def test_repr(self):
        sol = MCFSSolution(selected=(0,), assignment=(0,), objective=1.0)
        assert "MCFSSolution" in repr(sol)
