"""Independent cross-check of the matcher against networkx min-cost flow.

The Hungarian cross-checks in ``test_sspa.py`` expand capacities into
unit columns; this file validates against a *different* reference -- the
network-simplex min-cost-flow solver of networkx -- on the exact
transportation formulation, catching any systematic error the expansion
could share.

Costs are scaled to integers for networkx (its simplex requires integral
arithmetic for exactness), so comparisons use the scaled values.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from repro.network.dijkstra import distance_matrix
from repro.network.graph import Network
from tests.conftest import build_grid_network, build_random_network

SCALE = 10_000


def networkx_reference(
    network: Network, customers, facilities, capacities
) -> float | None:
    """Min-cost transportation via networkx network simplex.

    Returns the optimal cost in *scaled integer* units, or ``None`` when
    infeasible.
    """
    mat = distance_matrix(network, customers, facilities)
    g = nx.DiGraph()
    m = len(customers)
    total_capacity = 0
    for i in range(m):
        g.add_node(f"c{i}", demand=-1)
    for j, cap in enumerate(capacities):
        g.add_node(f"f{j}", demand=0)
        g.add_edge(f"f{j}", "sink", weight=0, capacity=cap)
        total_capacity += cap
    g.add_node("sink", demand=m)
    if total_capacity < m:
        return None
    for i in range(m):
        for j in range(len(facilities)):
            if np.isfinite(mat[i, j]):
                g.add_edge(
                    f"c{i}",
                    f"f{j}",
                    weight=int(round(mat[i, j] * SCALE)),
                    capacity=1,
                )
    try:
        cost = nx.min_cost_flow_cost(g)
    except nx.NetworkXUnfeasible:
        return None
    return float(cost)


@pytest.mark.parametrize("seed", range(8))
def test_matches_network_simplex(seed):
    g = build_random_network(40, seed=seed, avg_links=4)
    rng = np.random.default_rng(seed + 321)
    customers = [int(v) for v in rng.choice(40, size=10, replace=True)]
    facilities = sorted(int(v) for v in rng.choice(40, size=6, replace=False))
    capacities = [int(c) for c in rng.integers(1, 4, size=6)]
    ref = networkx_reference(g, customers, facilities, capacities)
    if ref is None:
        with pytest.raises(MatchingError):
            assign_all(g, customers, facilities, capacities)
        return
    result = assign_all(g, customers, facilities, capacities)
    scaled = sum(
        int(round(d * SCALE))
        for d in (
            distance_matrix(g, customers, facilities)[i, j]
            for i, j in enumerate(result.assignment)
        )
    )
    # networkx optimizes the *rounded* costs while our matcher optimizes
    # the true floats; ties in one metric may break differently in the
    # other, so allow one rounding ulp per customer.
    assert abs(scaled - int(ref)) <= len(customers)


def test_matches_on_grid_with_tight_capacity():
    g = build_grid_network(5, 5)
    customers = [0, 1, 2, 3, 4, 20, 21, 22]
    facilities = [12, 24]
    capacities = [5, 3]
    ref = networkx_reference(g, customers, facilities, capacities)
    result = assign_all(g, customers, facilities, capacities)
    scaled = sum(
        int(round(d * SCALE))
        for d in (
            distance_matrix(g, customers, facilities)[i, j]
            for i, j in enumerate(result.assignment)
        )
    )
    assert abs(scaled - int(ref)) <= len(customers)
