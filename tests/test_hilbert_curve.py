"""Tests for the Hilbert space-filling curve codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.hilbert_curve import hilbert_index, hilbert_point, hilbert_sort


class TestCodec:
    def test_order1_curve(self):
        # The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        expected = [(0, 0), (0, 1), (1, 1), (1, 0)]
        assert [hilbert_point(i, order=1) for i in range(4)] == expected
        assert [hilbert_index(x, y, order=1) for x, y in expected] == [0, 1, 2, 3]

    def test_bijection_order3(self):
        order = 3
        side = 1 << order
        seen = set()
        for x in range(side):
            for y in range(side):
                idx = hilbert_index(x, y, order)
                assert 0 <= idx < side * side
                assert hilbert_point(idx, order) == (x, y)
                seen.add(idx)
        assert len(seen) == side * side

    def test_adjacent_indices_are_adjacent_cells(self):
        """Consecutive curve positions differ by one grid step."""
        order = 4
        prev = hilbert_point(0, order)
        for idx in range(1, (1 << order) ** 2):
            cur = hilbert_point(idx, order)
            assert abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) == 1
            prev = cur

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index(8, 0, order=3)
        with pytest.raises(ValueError):
            hilbert_index(-1, 0, order=3)
        with pytest.raises(ValueError):
            hilbert_point(64, order=3)
        with pytest.raises(ValueError):
            hilbert_point(-1, order=3)


class TestSort:
    def test_sort_is_permutation(self):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 2))
        order = hilbert_sort(pts)
        assert sorted(order.tolist()) == list(range(50))

    def test_locality_beats_random_order(self):
        """Average hop length along the Hilbert order beats random order."""
        rng = np.random.default_rng(1)
        pts = rng.random((300, 2))
        order = hilbert_sort(pts)
        sorted_pts = pts[order]
        hilbert_hops = np.hypot(*(np.diff(sorted_pts, axis=0).T)).mean()
        random_hops = np.hypot(*(np.diff(pts, axis=0).T)).mean()
        assert hilbert_hops < 0.5 * random_hops

    def test_degenerate_axis(self):
        pts = np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0]])
        order = hilbert_sort(pts)
        assert sorted(order.tolist()) == [0, 1, 2]

    def test_identical_points(self):
        pts = np.ones((4, 2))
        order = hilbert_sort(pts)
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            hilbert_sort(np.zeros((3, 3)))


@settings(max_examples=80, deadline=None)
@given(
    x=st.integers(0, 255),
    y=st.integers(0, 255),
    order=st.integers(8, 12),
)
def test_property_round_trip(x, y, order):
    """index -> point -> index is the identity for any order."""
    idx = hilbert_index(x, y, order)
    assert hilbert_index(*hilbert_point(idx, order), order) == idx
