"""Tests for throughput-constrained assignment (extension)."""

from __future__ import annotations

import math

import pytest

from repro import solve
from repro.core.instance import MCFSInstance
from repro.core.throughput import assign_with_throughput, congestion_profile
from repro.errors import InvalidInstanceError
from repro.flow.mcf import FlowError
from repro.flow.sspa import assign_all
from tests.conftest import build_grid_network, build_line_network, build_random_instance


def line_instance() -> MCFSInstance:
    return MCFSInstance(
        network=build_line_network(8),
        customers=(0, 1, 2),
        facility_nodes=(3, 7),
        capacities=(3, 3),
        k=2,
    )


class TestUnconstrained:
    def test_matches_assign_all(self):
        inst = line_instance()
        res = assign_with_throughput(inst, [0, 1], float("inf"))
        ref = assign_all(
            inst.network,
            list(inst.customers),
            [inst.facility_nodes[j] for j in (0, 1)],
            [inst.capacities[j] for j in (0, 1)],
        )
        assert res.cost == pytest.approx(ref.cost)
        assert sum(res.facility_loads.values()) == inst.m

    def test_matches_assign_all_on_random_instances(self):
        for seed in range(5):
            inst = build_random_instance(seed, cap_range=(4, 8))
            sol = solve(inst, method="wma")
            res = assign_with_throughput(
                inst, sol.selected, float("inf")
            )
            assert res.cost == pytest.approx(sol.objective, rel=1e-9)


class TestConstrained:
    def test_tight_throughput_raises_cost(self):
        # Customers cluster around the facility; throughput 1 per edge
        # forces some units onto longer detours (the grid offers them).
        g = build_grid_network(4, 4)
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 4),
            facility_nodes=(5,),
            capacities=(3,),
            k=1,
        )
        free = assign_with_throughput(inst, [0], float("inf"))
        tight = assign_with_throughput(inst, [0], 1.0)
        assert tight.cost > free.cost
        assert tight.max_edge_utilization <= 1.0 + 1e-9

    def test_line_network_tight_throughput_infeasible(self):
        # On a path graph there is no detour: three units cannot squeeze
        # through a throughput-1 edge, so the problem is infeasible (not
        # merely costlier).
        inst = line_instance()
        with pytest.raises(FlowError):
            assign_with_throughput(inst, [0, 1], 1.0)

    def test_infeasible_when_choked(self):
        # Single exit edge with throughput below the customer count.
        inst = MCFSInstance(
            network=build_line_network(4),
            customers=(0, 0, 0),
            facility_nodes=(3,),
            capacities=(5,),
            k=1,
        )
        with pytest.raises(FlowError):
            assign_with_throughput(inst, [0], 2.0)

    def test_grid_reroutes_around_congestion(self):
        # On a grid there are alternative routes; tight throughput must
        # stay feasible but cost more.
        g = build_grid_network(4, 4)
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 4, 5),
            facility_nodes=(15,),
            capacities=(8,),
            k=1,
        )
        free = assign_with_throughput(inst, [0], float("inf"))
        tight = assign_with_throughput(inst, [0], 2.0)
        assert tight.cost >= free.cost
        assert sum(tight.facility_loads.values()) == 4

    def test_loads_respect_capacity(self):
        g = build_grid_network(4, 4)
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 4, 5, 10),
            facility_nodes=(5, 15),
            capacities=(3, 3),
            k=2,
        )
        res = assign_with_throughput(inst, [0, 1], 2.0)
        for j, load in res.facility_loads.items():
            assert load <= inst.capacities[j]
        assert sum(res.facility_loads.values()) == inst.m

    def test_invalid_inputs(self):
        inst = line_instance()
        with pytest.raises(InvalidInstanceError):
            assign_with_throughput(inst, [], 1.0)
        with pytest.raises(FlowError):
            assign_with_throughput(inst, [0], 0.0)


class TestCongestionProfile:
    def test_monotone_cost(self):
        g = build_grid_network(4, 4)
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 4),
            facility_nodes=(5,),
            capacities=(3,),
            k=1,
        )
        rows = congestion_profile(inst, [0], [math.inf, 2.0, 1.0])
        costs = [r["cost"] for r in rows if r["cost"] is not None]
        assert costs == sorted(costs)
        assert rows[0]["vs_unconstrained"] == pytest.approx(1.0)

    def test_infeasible_point_reported(self):
        inst = MCFSInstance(
            network=build_line_network(4),
            customers=(0, 0, 0),
            facility_nodes=(3,),
            capacities=(5,),
            k=1,
        )
        rows = congestion_profile(inst, [0], [math.inf, 1.0])
        assert rows[0]["cost"] is not None
        assert rows[1]["cost"] is None
