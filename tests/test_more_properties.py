"""Additional property-based tests: geometry, datagen, serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datagen.synthetic import (
    clustered_points,
    connection_radius,
    geometric_network,
    uniform_points,
)
from repro.geometry.hilbert_curve import hilbert_sort
from repro.io.serialization import load_network, save_network
from repro.network.graph import Network

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(seed=st.integers(0, 10_000), n=st.integers(2, 60))
def test_property_geometric_network_edge_lengths(seed, n):
    """Every RGG edge respects the cutoff and equals its point distance."""
    rng = np.random.default_rng(seed)
    pts = uniform_points(n, rng, side=100.0)
    radius = connection_radius(n, 1.5, side=100.0)
    g = geometric_network(pts, radius)
    for u, v, w in g.edges():
        d = float(np.hypot(*(pts[u] - pts[v])))
        assert w == pytest.approx(max(d, 1e-9))
        assert d <= radius + 1e-9


@COMMON
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 80),
    clusters=st.integers(1, 8),
)
def test_property_clustered_points_in_square(seed, n, clusters):
    if n < clusters:
        return
    rng = np.random.default_rng(seed)
    pts, centers = clustered_points(n, clusters, rng, side=50.0)
    assert pts.shape == (n, 2)
    assert (pts >= 0).all() and (pts <= 50.0).all()
    assert centers.shape == (clusters, 2)


@COMMON
@given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
def test_property_hilbert_sort_permutation(seed, n):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * rng.integers(1, 1000)
    order = hilbert_sort(pts)
    assert sorted(order.tolist()) == list(range(n))


@COMMON
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 30),
    directed=st.booleans(),
    with_coords=st.booleans(),
)
def test_property_network_serialization_round_trip(
    tmp_path_factory, seed, n, directed, with_coords
):
    rng = np.random.default_rng(seed)
    edges = []
    for _ in range(min(3 * n, 60)):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        edges.append((u, v, float(rng.uniform(0.1, 10.0))))
    coords = rng.random((n, 2)) if with_coords else None
    g = Network(n, edges, coords=coords, directed=directed)

    path = tmp_path_factory.mktemp("ser") / "net.npz"
    save_network(g, path)
    back = load_network(path)
    assert back.n_nodes == g.n_nodes
    assert back.directed == g.directed
    assert back.has_coords == g.has_coords
    assert sorted(back.edges()) == pytest.approx(sorted(g.edges()))
    if with_coords:
        assert np.allclose(back.coords, g.coords)
