"""Regression tests pinning exact outcomes on fixed seeds.

These protect against silent behavioral drift: if a refactor changes any
pinned value, it changed algorithm behavior (not necessarily wrongly --
update the pin only after understanding why).  All pins were produced by
the verified implementation (matcher cross-checked against Hungarian,
exact solver against brute force).
"""

from __future__ import annotations

import pytest

from repro import solve
from repro.core.instance import MCFSInstance
from repro.datagen.instances import uniform_instance
from repro.datagen.synthetic import clustered_network, uniform_network
from repro.geometry.hilbert_curve import hilbert_index
from tests.conftest import build_line_network


class TestGeneratorPins:
    def test_uniform_network_shape(self):
        g = uniform_network(256, 2.0, seed=7)
        assert g.n_nodes == 256
        assert g.n_edges == 1429

    def test_clustered_network_shape(self):
        g = clustered_network(200, 10, 1.5, seed=7)
        assert g.n_nodes == 210
        # Includes the 45 center-clique edges.
        assert g.n_edges >= 45

    def test_uniform_instance_fields(self):
        inst = uniform_instance(256, seed=7)
        assert inst.m == 26
        assert inst.k == 3
        assert inst.customers[:3] == (209, 116, 53)


class TestSolverPins:
    def test_exact_on_line_instance(self):
        inst = MCFSInstance(
            network=build_line_network(16),
            customers=(1, 2, 5, 9, 13, 14),
            facility_nodes=(0, 4, 8, 12, 15),
            capacities=(2, 2, 2, 2, 2),
            k=3,
        )
        exact = solve(inst, method="exact")
        assert exact.objective == pytest.approx(10.0)

    def test_wma_on_line_instance(self):
        inst = MCFSInstance(
            network=build_line_network(16),
            customers=(1, 2, 5, 9, 13, 14),
            facility_nodes=(0, 4, 8, 12, 15),
            capacities=(2, 2, 2, 2, 2),
            k=3,
        )
        sol = solve(inst, method="wma")
        # Pinned WMA outcome on this instance (a 20% gap to the exact
        # 10.0 -- the coverage-driven selection trades distance for ties).
        assert sol.objective == pytest.approx(12.0)

    def test_wma_deterministic_objective_on_seeded_instance(self):
        inst = uniform_instance(256, seed=7)
        a = solve(inst, method="wma").objective
        b = solve(inst, method="wma").objective
        assert a == pytest.approx(b)
        assert a == pytest.approx(5211.0, rel=0.001)


class TestHilbertPins:
    def test_known_indices(self):
        # Order-2 curve reference values.
        assert hilbert_index(0, 0, 2) == 0
        assert hilbert_index(3, 3, 2) == 10
        assert hilbert_index(3, 0, 2) == 15
        assert hilbert_index(1, 1, 2) == 2
