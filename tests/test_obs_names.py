"""Golden tests pinning the observability name registry.

The canonical instrument vocabulary lives in :mod:`repro.obs.names`.
These tests pin the exact counter list (a rename must consciously touch
this file), and assert the CI smoke baseline only gates names the
registry knows -- together with reprolint's REP001 rule this makes it
impossible to rename a counter silently.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import names

REPO_ROOT = Path(__file__).resolve().parents[1]
SMOKE_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "smoke.json"

#: The canonical counter vocabulary.  Adding a counter means extending
#: this list AND src/repro/obs/names.py in the same change; removing one
#: means the call sites are gone too (REP001 enforces both directions).
GOLDEN_COUNTERS = [
    "ch.bucket_scans",
    "ch.matrix_blocks",
    "ch.shortcuts",
    "ch.upward_settles",
    "dijkstra.kernel_runs",
    "dijkstra.pops",
    "dijkstra.relaxations",
    "dijkstra.runs",
    "dijkstra.settled",
    "distcache.evictions",
    "distcache.hits",
    "distcache.misses",
    "incremental.edges_materialized",
    "incremental.pops",
    "incremental.relaxations",
    "incremental.settled",
    "incremental.streams",
    "oracle.builds",
    "oracle.cache_hits",
    "oracle.cache_misses",
    "oracle.prunes",
    "oracle.queries",
    "oracle.query_pops",
    "oracle.query_relaxations",
    "oracle.streams",
    "parallel.fallbacks",
    "parallel.tasks",
    "runtime.attempts",
    "runtime.budget_exceeded",
    "runtime.degraded_returns",
    "runtime.fallbacks",
    "serve.applied",
    "serve.batches",
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.degraded",
    "serve.mutations",
    "serve.rejected",
    "serve.repairs_component",
    "serve.repairs_global",
    "serve.shed_deadline",
    "serve.shed_queue",
    "set_cover.checks",
    "set_cover.heap_pops",
    "set_cover.selections",
    "sspa.augmentations",
    "sspa.dijkstra_runs",
    "sspa.path_edges",
    "sspa.pops",
    "sspa.reveals",
    "wma.iterations",
    "wma.solves",
]

GOLDEN_GAUGES = ["bipartite.peak_edges"]
GOLDEN_TIMERS = ["wma.solve"]


class TestGoldenRegistry:
    def test_counters_pinned(self):
        assert sorted(names.COUNTERS) == GOLDEN_COUNTERS

    def test_gauges_pinned(self):
        assert sorted(names.GAUGES) == GOLDEN_GAUGES

    def test_timers_pinned(self):
        assert sorted(names.TIMERS) == GOLDEN_TIMERS

    def test_kinds_disjoint(self):
        assert not names.COUNTERS & names.GAUGES
        assert not names.COUNTERS & names.TIMERS
        assert not names.GAUGES & names.TIMERS

    def test_all_names_is_union(self):
        assert names.ALL_NAMES == (
            names.COUNTERS | names.GAUGES | names.TIMERS
        )


class TestLookupHelpers:
    def test_kind_of(self):
        assert names.kind_of("dijkstra.pops") == "counter"
        assert names.kind_of("bipartite.peak_edges") == "gauge"
        assert names.kind_of("wma.solve") == "timer"
        assert names.kind_of("not.a.name") is None

    def test_is_registered(self):
        assert names.is_registered("wma.iterations")
        assert not names.is_registered("wma.bogus")

    def test_exported_keys_fan_out_timers(self):
        keys = names.exported_keys()
        assert "wma.solve.seconds" in keys
        assert "wma.solve.calls" in keys
        assert "wma.solve" not in keys
        assert "dijkstra.pops" in keys


class TestSmokeBaselineSubset:
    """The CI counter gate may only reference registered names."""

    def test_smoke_keys_are_registered_exports(self):
        doc = json.loads(SMOKE_BASELINE.read_text())
        metric_keys = set(doc["metrics"])
        unknown = metric_keys - names.exported_keys()
        assert not unknown, (
            f"smoke baseline gates unregistered metric names: "
            f"{sorted(unknown)}"
        )

    def test_naming_convention(self):
        for name in sorted(names.ALL_NAMES):
            prefix, _, rest = name.partition(".")
            assert prefix and rest, f"{name!r} is not dotted"
            assert name == name.lower()
            assert " " not in name
