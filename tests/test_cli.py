"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io.serialization import load_instance, save_instance
from tests.conftest import build_random_instance


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.npz"
    save_instance(build_random_instance(0, cap_range=(4, 8)), path)
    return str(path)


class TestGenerate:
    def test_uniform(self, tmp_path, capsys):
        out = str(tmp_path / "u.npz")
        code = main(
            ["generate", "--kind", "uniform", "--n", "128", "-o", out]
        )
        assert code == 0
        instance = load_instance(out)
        assert instance.network.n_nodes == 128
        assert "wrote" in capsys.readouterr().out

    def test_clustered(self, tmp_path):
        out = str(tmp_path / "c.npz")
        code = main(
            [
                "generate", "--kind", "clustered", "--n", "128",
                "--clusters", "5", "--seed", "3", "-o", out,
            ]
        )
        assert code == 0
        instance = load_instance(out)
        assert instance.network.n_nodes == 133  # points + centers


class TestSolve:
    def test_solve_and_save(self, instance_file, tmp_path, capsys):
        out = str(tmp_path / "sol.json")
        code = main(["solve", instance_file, "--method", "wma", "-o", out])
        assert code == 0
        payload = json.loads(open(out).read())
        assert payload["meta"]["algorithm"] == "wma"
        assert "objective" in capsys.readouterr().out

    def test_solve_without_output(self, instance_file, capsys):
        assert main(["solve", instance_file, "--method", "hilbert"]) == 0
        assert "hilbert" in capsys.readouterr().out

    def test_seeded_method(self, instance_file):
        assert main(
            ["solve", instance_file, "--method", "random", "--seed", "4"]
        ) == 0


class TestStats:
    def test_stats(self, instance_file, capsys):
        assert main(["stats", instance_file]) == 0
        out = capsys.readouterr().out
        assert "network" in out
        assert "avg_degree" in out


class TestCompare:
    def test_compare(self, instance_file, capsys):
        code = main(
            ["compare", instance_file, "--methods", "wma,hilbert"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wma" in out
        assert "vs_best" in out

    def test_unknown_method(self, instance_file, capsys):
        code = main(["compare", instance_file, "--methods", "bogus"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err


class TestRefine:
    def test_refine_round_trip(self, instance_file, tmp_path, capsys):
        sol_path = str(tmp_path / "sol.json")
        assert main(
            ["solve", instance_file, "--method", "random", "-o", sol_path]
        ) == 0
        out_path = str(tmp_path / "refined.json")
        code = main(
            ["refine", instance_file, sol_path, "-o", out_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "refined" in out
        payload = json.loads(open(out_path).read())
        assert payload["meta"]["algorithm"].endswith("+ls")


class TestExport:
    def test_export_with_solution(self, instance_file, tmp_path, capsys):
        sol_path = str(tmp_path / "sol.json")
        main(["solve", instance_file, "--method", "wma", "-o", sol_path])
        out_path = str(tmp_path / "scenario.json")
        code = main(
            ["export", instance_file, "--solution", sol_path, "-o", out_path]
        )
        assert code == 0
        payload = json.loads(open(out_path).read())
        assert set(payload) == {"network", "instance", "solution"}

    def test_export_without_solution(self, instance_file, tmp_path):
        out_path = str(tmp_path / "scenario.json")
        assert main(["export", instance_file, "-o", out_path]) == 0
        payload = json.loads(open(out_path).read())
        assert set(payload) == {"network", "instance"}


class TestBench:
    def test_bench_fig9b(self, capsys, monkeypatch):
        # Patch the factory registry call path with a small sweep by
        # overriding the default sizes through argv only; fig9b with its
        # default 512-node network is fast enough to run directly.
        code = main(
            ["bench", "--experiment", "fig9b", "--methods", "wma,hilbert"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "objective" in out
        assert "wma" in out

    def test_bench_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["bench", "--experiment", "fig99"])

    def test_bench_registry_covers_all_choices(self):
        """Every experiment id offered by the CLI resolves to a factory."""
        import repro.cli as cli
        from repro.bench import experiments as ex

        factories = {
            "fig6a": (ex.fig6a_cases, "n"),
        }
        # Re-derive the mapping the command builds, by invoking the
        # private handler's dict through a tiny shim: simply ensure the
        # names in EXPERIMENTS exist as factory functions.
        mapping = {
            "fig6a": ex.fig6a_cases, "fig6b": ex.fig6b_cases,
            "fig6c": ex.fig6c_cases, "fig6d": ex.fig6d_cases,
            "fig7a": ex.fig7a_cases, "fig7b": ex.fig7b_cases,
            "fig7c": ex.fig7c_cases, "fig7d": ex.fig7d_cases,
            "fig8a": ex.fig8a_cases, "fig8b": ex.fig8b_cases,
            "fig8c": ex.fig8c_cases, "fig8d": ex.fig8d_cases,
            "fig9a": ex.fig9a_cases, "fig9b": ex.fig9b_cases,
            "fig10": ex.fig10_cases, "fig12a": ex.fig12a_cases,
            "fig13a": ex.fig13a_cases, "fig13b": ex.fig13b_cases,
        }
        assert set(cli.EXPERIMENTS) == set(mapping)
        for factory in mapping.values():
            assert callable(factory)


class TestOracleCommand:
    def test_build_then_up_to_date(self, tmp_path, capsys):
        cache = str(tmp_path / "blobs")
        argv = [
            "oracle", "build", "--instance-kind", "uniform", "--n", "64",
            "--landmarks", "4", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "4 landmarks" in out
        # Second build finds the fingerprint-keyed blob and skips work.
        assert main(argv) == 0
        assert "up to date" in capsys.readouterr().out

    def test_build_from_instance_file(self, instance_file, tmp_path, capsys):
        cache = str(tmp_path / "blobs")
        code = main(
            ["oracle", "build", instance_file, "--landmarks", "3",
             "--cache-dir", cache]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_info_reports_cache_status(self, tmp_path, capsys):
        cache = str(tmp_path / "blobs")
        base = [
            "--instance-kind", "uniform", "--n", "64", "--landmarks", "4",
            "--cache-dir", cache,
        ]
        assert main(["oracle", "info", *base]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cached"] is False
        assert doc["n_landmarks"] == 4
        assert main(["oracle", "build", *base]) == 0
        capsys.readouterr()
        assert main(["oracle", "info", *base]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cached"] is True
        assert doc["cache_path"].startswith(cache)

    def test_build_and_info_ch_kind(self, tmp_path, capsys):
        cache = str(tmp_path / "blobs")
        base = [
            "--kind", "ch", "--instance-kind", "uniform", "--n", "64",
            "--cache-dir", cache,
        ]
        assert main(["oracle", "build", *base]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "shortcuts" in out
        assert main(["oracle", "build", *base]) == 0
        assert "up to date" in capsys.readouterr().out
        assert main(["oracle", "info", *base]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "ch"
        assert doc["cached"] is True
        assert doc["n_shortcuts"] >= 0
        assert doc["avg_upward_degree"] > 0
        assert doc["blob_bytes"] > 0

    def test_info_writes_output_file(self, tmp_path, capsys):
        out = str(tmp_path / "info.json")
        code = main(
            ["oracle", "info", "--instance-kind", "uniform", "--n", "64",
             "--landmarks", "2", "--cache-dir", str(tmp_path / "b"),
             "-o", out]
        )
        assert code == 0
        doc = json.loads(open(out).read())
        assert doc["format_version"] >= 1
        assert "wrote" in capsys.readouterr().out


class TestProfileOracleFlag:
    def test_profile_oracle_alt_and_off(self, tmp_path):
        base = [
            "profile", "--kind", "uniform", "--n", "64", "--seed", "1",
            "--method", "wma",
        ]
        alt_path = tmp_path / "alt.json"
        off_path = tmp_path / "off.json"
        assert main(base + ["--oracle", "alt", "-o", str(alt_path)]) == 0
        assert main(base + ["--oracle", "off", "-o", str(off_path)]) == 0
        alt = json.loads(alt_path.read_text())
        off = json.loads(off_path.read_text())
        assert alt["objective"] == off["objective"]
        assert alt["metrics"]["oracle.queries"] > 0
        assert off["metrics"]["oracle.queries"] == 0

    def test_profile_oracle_ch_matches_kernel(self, tmp_path):
        base = [
            "profile", "--kind", "uniform", "--n", "64", "--seed", "1",
            "--method", "wma",
        ]
        ch_path = tmp_path / "ch.json"
        off_path = tmp_path / "off.json"
        assert main(base + ["--oracle", "ch", "-o", str(ch_path)]) == 0
        assert main(base + ["--oracle", "off", "-o", str(off_path)]) == 0
        ch = json.loads(ch_path.read_text())
        off = json.loads(off_path.read_text())
        assert ch["objective"] == off["objective"]
        assert ch["metrics"]["ch.upward_settles"] > 0
        assert off["metrics"]["ch.upward_settles"] == 0
