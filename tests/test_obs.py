"""The observability layer: registry semantics, spans, profiling, gates."""

from __future__ import annotations

import io
import json

import pytest

from repro.datagen.instances import uniform_instance
from repro.obs import metrics, tracing
from repro.obs.metrics import Registry
from repro.obs.profile import ProfileReport, check_against_baseline, profile_solver
from repro.obs.tracing import Trace


class TestRegistry:
    def test_counter_accumulates(self):
        reg = Registry()
        reg.counter("a.b").add()
        reg.counter("a.b").add(4)
        assert reg.counter("a.b").value == 5

    def test_instruments_cached_by_name(self):
        reg = Registry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.timer("t") is reg.timer("t")

    def test_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("name")

    def test_gauge_set_and_set_max(self):
        reg = Registry()
        g = reg.gauge("peak")
        g.set(10)
        g.set_max(3)
        assert g.value == 10
        g.set_max(12)
        assert g.value == 12

    def test_timer_observe_and_context(self):
        reg = Registry()
        t = reg.timer("phase")
        t.observe(0.5)
        with t.time():
            pass
        assert t.count == 2
        assert t.total >= 0.5

    def test_as_dict_flattens_and_sorts(self):
        reg = Registry()
        reg.counter("z.count").add(2)
        reg.gauge("a.peak").set(1.5)
        reg.timer("m.phase").observe(0.25)
        flat = reg.as_dict()
        assert list(flat) == sorted(flat)
        assert flat["z.count"] == 2
        assert flat["a.peak"] == 1.5
        assert flat["m.phase.seconds"] == 0.25
        assert flat["m.phase.calls"] == 1

    def test_reset_and_contains(self):
        reg = Registry()
        reg.counter("c").add()
        assert "c" in reg and len(reg) == 1
        reg.reset()
        assert "c" not in reg and len(reg) == 0

    def test_use_swaps_and_restores_active(self):
        outer = metrics.active()
        reg = Registry()
        with metrics.use(reg):
            assert metrics.active() is reg
            inner = Registry()
            with metrics.use(inner):
                assert metrics.active() is inner
            assert metrics.active() is reg
        assert metrics.active() is outer

    def test_use_restores_on_exception(self):
        outer = metrics.active()
        with pytest.raises(RuntimeError):
            with metrics.use(Registry()):
                raise RuntimeError("boom")
        assert metrics.active() is outer

    def test_default_registry_is_fallback(self):
        assert metrics.active() is metrics.default()


class TestTracing:
    def test_span_nesting_depth_and_parent(self):
        trace = Trace()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
            with trace.span("sibling"):
                pass
        outer, inner, sibling = trace.spans
        assert (outer.depth, outer.parent) == (0, -1)
        assert (inner.depth, inner.parent) == (1, outer.index)
        assert (sibling.depth, sibling.parent) == (1, outer.index)
        assert outer.duration >= inner.duration + sibling.duration

    def test_span_attrs_recorded(self):
        trace = Trace()
        with trace.span("wma.iteration", k=3) as span:
            pass
        assert span.attrs == {"k": 3}
        assert trace.rows()[0]["attrs"] == {"k": 3}

    def test_module_span_noop_without_active_trace(self):
        assert tracing.active() is None
        with tracing.span("anything") as span:
            assert span is None

    def test_module_span_records_on_active_trace(self):
        trace = Trace()
        with tracing.use(trace):
            with tracing.span("phase", idx=1):
                pass
        assert tracing.active() is None
        assert len(trace) == 1
        assert trace.spans[0].name == "phase"

    def test_summary_aggregates_by_name(self):
        trace = Trace()
        for _ in range(3):
            with trace.span("repeat"):
                pass
        summary = trace.summary()
        assert summary["repeat"]["calls"] == 3
        assert summary["repeat"]["total_s"] >= summary["repeat"]["max_s"]

    def test_jsonl_export_round_trip(self):
        trace = Trace()
        with trace.span("a", tag="x"):
            with trace.span("b"):
                pass
        buf = io.StringIO()
        trace.export_jsonl(buf)
        buf.seek(0)
        rows = Trace.import_jsonl(buf)
        assert rows == trace.rows()
        assert [r["name"] for r in rows] == ["a", "b"]

    def test_jsonl_export_to_path(self, tmp_path):
        trace = Trace()
        with trace.span("only"):
            pass
        path = str(tmp_path / "spans.jsonl")
        trace.export_jsonl(path)
        assert Trace.import_jsonl(path) == trace.rows()


class TestProfileSolver:
    @pytest.fixture(scope="class")
    def report(self) -> ProfileReport:
        return profile_solver(uniform_instance(128, seed=1), "wma")

    REQUIRED = (
        "dijkstra.pops",
        "incremental.edges_materialized",
        "sspa.augmentations",
        "set_cover.checks",
    )

    def test_required_counters_present(self, report):
        for name in self.REQUIRED:
            assert name in report.metrics, name
            assert report.metrics[name] > 0

    def test_span_wall_times_present(self, report):
        for name in ("solve", "wma.matching", "wma.cover", "validate"):
            assert report.span_summary[name]["total_s"] >= 0.0
            assert report.span_summary[name]["calls"] >= 1

    def test_report_json_round_trip(self, report):
        doc = json.loads(report.to_json())
        assert doc["method"] == "wma"
        assert doc["metrics"] == report.metrics
        assert doc["objective"] == report.objective

    def test_runs_are_isolated_from_default_registry(self):
        before = metrics.default().as_dict().get("sspa.augmentations", 0)
        profile_solver(uniform_instance(128, seed=2), "wma")
        after = metrics.default().as_dict().get("sspa.augmentations", 0)
        assert after == before


class TestBaselineGate:
    def test_within_tolerance_passes(self):
        violations = check_against_baseline(
            {"a": 110}, {"a": 100}, tolerance=0.2
        )
        assert violations == []

    def test_exceeding_tolerance_fails(self):
        violations = check_against_baseline(
            {"a": 121}, {"a": 100}, tolerance=0.2
        )
        assert len(violations) == 1
        assert "a" in violations[0]

    def test_missing_observed_counter_fails(self):
        violations = check_against_baseline({}, {"a": 100})
        assert violations == ["a: missing from observed metrics"]

    def test_extra_observed_counters_ignored(self):
        assert check_against_baseline({"a": 1, "new": 9999}, {"a": 1}) == []

    def test_committed_smoke_baseline_gate(self, tmp_path):
        """The CI gate end-to-end: pass on honest baseline, fail on a
        lowered one (the acceptance-criteria scenario)."""
        from pathlib import Path

        from repro.cli import main

        baseline = (
            Path(__file__).resolve().parents[1]
            / "benchmarks" / "baselines" / "smoke.json"
        )
        doc = json.loads(baseline.read_text())
        inst = doc["instance"]
        argv = [
            "profile",
            "--kind", inst["kind"],
            "--n", str(inst["n"]),
            "--seed", str(inst["seed"]),
            "--method", doc["method"],
            "-o", str(tmp_path / "report.json"),
        ]
        assert main(argv + ["--baseline", str(baseline)]) == 0

        doc["metrics"]["sspa.augmentations"] = 1
        lowered = tmp_path / "lowered.json"
        lowered.write_text(json.dumps(doc))
        assert main(argv + ["--baseline", str(lowered)]) == 1


class TestCliProfile:
    def test_profile_writes_report_and_spans(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        spans = tmp_path / "spans.jsonl"
        rc = main(
            [
                "profile", "--kind", "uniform", "--n", "128", "--seed", "3",
                "-o", str(out), "--spans-out", str(spans),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        for name in TestProfileSolver.REQUIRED:
            assert name in doc["metrics"]
        rows = Trace.import_jsonl(str(spans))
        assert any(r["name"] == "wma.iteration" for r in rows)


class TestBenchRowMetrics:
    def test_solver_row_collects_metrics(self):
        from repro.bench.harness import solver_row

        row = solver_row(uniform_instance(128, seed=4), "wma")
        assert row.metrics["sspa.augmentations"] > 0
        assert row.metrics["incremental.edges_materialized"] > 0

    def test_rows_json_round_trip(self, tmp_path):
        from repro.bench.harness import load_rows, save_rows, solver_row

        rows = [solver_row(uniform_instance(128, seed=5), "wma")]
        path = str(tmp_path / "rows.json")
        save_rows(rows, path)
        loaded = load_rows(path)
        assert len(loaded) == 1
        assert loaded[0].metrics == rows[0].metrics
        assert loaded[0].objective == pytest.approx(rows[0].objective)
