"""Tests for MCFS on directed networks.

The paper's problem statement allows "directed or undirected" graphs;
distances are customer-to-facility throughout (the direction the matcher
optimizes).
"""

from __future__ import annotations

import pytest

from repro import solve, validate_solution
from repro.bench.solution_stats import solution_stats
from repro.core.instance import MCFSInstance
from repro.core.validation import evaluate_objective
from repro.network.graph import Network


def directed_cycle(n: int, weight: float = 1.0) -> Network:
    """A directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    return Network(
        n, [(i, (i + 1) % n, weight) for i in range(n)], directed=True
    )


def asymmetric_pair() -> Network:
    """Two nodes where the forward arc is much cheaper than the return."""
    return Network(2, [(0, 1, 1.0), (1, 0, 10.0)], directed=True)


class TestDirectedObjective:
    def test_uses_customer_to_facility_direction(self):
        g = asymmetric_pair()
        inst = MCFSInstance(
            network=g,
            customers=(0,),
            facility_nodes=(1,),
            capacities=(1,),
            k=1,
        )
        # Customer at 0 reaching facility at 1 costs 1 (not 10).
        assert evaluate_objective(inst, (0,)) == pytest.approx(1.0)

    def test_reverse_direction(self):
        g = asymmetric_pair()
        inst = MCFSInstance(
            network=g,
            customers=(1,),
            facility_nodes=(0,),
            capacities=(1,),
            k=1,
        )
        assert evaluate_objective(inst, (0,)) == pytest.approx(10.0)


class TestDirectedSolving:
    def test_wma_on_cycle(self):
        g = directed_cycle(8)
        inst = MCFSInstance(
            network=g,
            customers=(0, 4),
            facility_nodes=(2, 6),
            capacities=(2, 2),
            k=2,
        )
        sol = solve(inst, method="wma")
        validate_solution(inst, sol)
        # Customer 0 -> facility at 2 costs 2 (forward only); customer 4
        # -> facility at 6 costs 2.
        assert sol.objective == pytest.approx(4.0)

    def test_exact_on_cycle_matches_wma(self):
        g = directed_cycle(8)
        inst = MCFSInstance(
            network=g,
            customers=(0, 4),
            facility_nodes=(2, 6),
            capacities=(2, 2),
            k=2,
        )
        wma = solve(inst, method="wma")
        exact = solve(inst, method="exact")
        validate_solution(inst, exact)
        assert wma.objective == pytest.approx(exact.objective)

    def test_asymmetric_distances_respected(self):
        # One-way street: nearest facility geometrically may be far by
        # road direction.
        g = Network(
            4,
            [
                (0, 1, 1.0),   # only way out of 0
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
            ],
            directed=True,
        )
        inst = MCFSInstance(
            network=g,
            customers=(1,),
            facility_nodes=(0, 2),
            capacities=(1, 1),
            k=1,
        )
        sol = solve(inst, method="wma")
        validate_solution(inst, sol)
        # Reaching node 0 from 1 costs 3 (around the loop); node 2 costs 1.
        assert sol.objective == pytest.approx(1.0)
        assert sol.selected == (1,)

    def test_stats_on_directed(self):
        g = directed_cycle(6)
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(2, 2),
            k=2,
        )
        sol = solve(inst, method="wma")
        stats = solution_stats(inst, sol)
        assert stats.objective == pytest.approx(sol.objective)
