"""Three-deep mutation chain for the effect fixpoint: ``outer`` never
touches the box itself, but transitively mutates it through two calls."""


class Box:
    def __init__(self) -> None:
        self.items: list[int] = []


def poke(box: Box) -> None:
    box.items.append(1)


def relay(box: Box) -> None:
    poke(box)


def outer(box: Box) -> None:
    relay(box)


def reader(box: Box) -> int:
    return len(box.items)
