"""A lazy (function-local) import: edges exist but are not eager."""


def lazy_peek() -> int:
    from alpha import alpha_value

    return alpha_value
