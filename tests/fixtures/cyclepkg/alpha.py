"""Half of an eager import cycle (alpha -> beta -> alpha)."""

from beta import beta_value

alpha_value = 1


def use_beta() -> int:
    return beta_value
