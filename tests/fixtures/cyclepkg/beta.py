"""Other half of the eager cycle."""

from alpha import alpha_value

beta_value = 2


def use_alpha() -> int:
    return alpha_value
