"""A solver whose budget compliance is only visible interprocedurally:
``solve_foo`` never checkpoints lexically, but its helper does."""

from runtime.budget import checkpoint


def _scan(items) -> int:
    total = 0
    for item in items:
        checkpoint()
        total += item
    return total


def solve_foo(instance) -> int:
    return _scan(instance)
