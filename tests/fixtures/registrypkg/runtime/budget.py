"""Stand-in for the budget module: the lexical checkpoint source."""


def checkpoint() -> None:
    pass
