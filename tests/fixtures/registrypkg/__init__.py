"""Root of the registry fixture: the SOLVERS mapping the call graph
must treat as an entry point (virtual ``<SOLVERS>`` node)."""

from baselines.foo import solve_foo

SOLVERS = {"foo": solve_foo}
