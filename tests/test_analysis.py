"""Tests for the analysis/reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import solve
from repro.bench.solution_stats import (
    _gini,
    compare_solutions,
    convergence_report,
    solution_stats,
)
from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.core.wma import WMASolver, WMATrace
from tests.conftest import build_line_network, build_random_instance


def line_instance() -> MCFSInstance:
    return MCFSInstance(
        network=build_line_network(10),
        customers=(1, 3, 8),
        facility_nodes=(0, 4, 9),
        capacities=(2, 2, 2),
        k=2,
    )


class TestSolutionStats:
    def test_distances(self):
        inst = line_instance()
        sol = MCFSSolution(selected=(1, 2), assignment=(1, 1, 2), objective=5.0)
        stats = solution_stats(inst, sol)
        assert stats.objective == pytest.approx(5.0)
        assert stats.mean_distance == pytest.approx(5.0 / 3)
        assert stats.max_distance == pytest.approx(3.0)
        assert stats.median_distance == pytest.approx(1.0)

    def test_utilization(self):
        inst = line_instance()
        sol = MCFSSolution(selected=(1, 2), assignment=(1, 1, 2), objective=5.0)
        stats = solution_stats(inst, sol)
        assert stats.facilities_open == 2
        assert stats.facilities_used == 2
        assert stats.mean_utilization == pytest.approx((1.0 + 0.5) / 2)
        assert stats.max_utilization == pytest.approx(1.0)

    def test_unused_open_facility(self):
        inst = line_instance()
        sol = MCFSSolution(
            selected=(0, 1), assignment=(1, 1, 1), objective=1 + 1 + 4
        )
        # Facility 1 has capacity 2; three customers exceed it, so use a
        # legal assignment instead: two to 1, one to 0.
        sol = MCFSSolution(
            selected=(0, 1), assignment=(0, 1, 1), objective=1 + 1 + 4
        )
        stats = solution_stats(inst, sol)
        assert stats.facilities_used == 2

    def test_as_row_keys(self):
        inst = line_instance()
        sol = MCFSSolution(selected=(1, 2), assignment=(1, 1, 2), objective=5.0)
        row = solution_stats(inst, sol).as_row()
        assert {"objective", "p95_dist", "gini_load"} <= set(row)


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.array([3.0, 3.0, 3.0])) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        assert _gini(np.array([0.0, 0.0, 9.0])) > 0.6

    def test_empty_and_zero(self):
        assert _gini(np.array([])) == 0.0
        assert _gini(np.zeros(4)) == 0.0


class TestCompare:
    def test_vs_best_column(self):
        inst = build_random_instance(3, cap_range=(3, 6))
        solutions = [solve(inst, method=m) for m in ("wma", "random")]
        rows = compare_solutions(inst, solutions)
        assert min(row["vs_best"] for row in rows) == 1.0
        assert all(row["vs_best"] >= 1.0 for row in rows)
        assert {row["algorithm"] for row in rows} == {"wma", "random"}


class TestConvergence:
    def test_report_from_real_run(self):
        inst = build_random_instance(4, cap_range=(3, 6))
        solver = WMASolver(inst)
        solver.solve()
        report = convergence_report(solver.trace, inst.m)
        assert report["iterations"] == solver.trace.iterations
        assert report["final_covered"] <= inst.m
        assert report["iters_to_50pct"] is None or (
            report["iters_to_50pct"] <= report["iterations"]
        )
        total_share = (
            report["matching_time_share"] + report["cover_time_share"]
        )
        assert total_share == pytest.approx(1.0, abs=0.01)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            convergence_report(WMATrace(), 5)

    def test_thresholds(self):
        trace = WMATrace(
            covered=[4, 8, 10],
            matching_time=[0.5, 0.2, 0.1],
            cover_time=[0.1, 0.1, 0.1],
            edges_materialized=[10, 14, 16],
        )
        report = convergence_report(trace, 10)
        assert report["iters_to_50pct"] == 2  # first iteration covers 4 < 5
        assert report["iters_to_90pct"] == 3
        assert report["iters_to_full"] == 3
        assert report["edges_final"] == 16
