"""Tests for demand (exploration vector) policies."""

from __future__ import annotations

from repro.core.demand import SelectiveDemandPolicy, UniformDemandPolicy


class TestSelective:
    def test_grows_only_uncovered(self):
        policy = SelectiveDemandPolicy()
        deltas = policy.deltas(
            demand=[1, 1, 1],
            covered=[True, False, False],
            max_demand=[5, 5, 5],
        )
        assert deltas == [0, 1, 1]

    def test_respects_cap(self):
        policy = SelectiveDemandPolicy()
        deltas = policy.deltas(
            demand=[5, 2], covered=[False, False], max_demand=[5, 5]
        )
        assert deltas == [0, 1]

    def test_all_covered_terminates(self):
        policy = SelectiveDemandPolicy()
        assert policy.deltas([1, 2], [True, True], [9, 9]) == [0, 0]

    def test_name(self):
        assert SelectiveDemandPolicy().name == "selective"


class TestUniform:
    def test_grows_everyone_when_any_uncovered(self):
        policy = UniformDemandPolicy()
        deltas = policy.deltas(
            demand=[1, 1, 1],
            covered=[True, True, False],
            max_demand=[5, 5, 5],
        )
        assert deltas == [1, 1, 1]

    def test_respects_cap(self):
        policy = UniformDemandPolicy()
        deltas = policy.deltas([5, 1], [False, False], [5, 5])
        assert deltas == [0, 1]

    def test_all_covered_terminates(self):
        policy = UniformDemandPolicy()
        assert policy.deltas([3, 3], [True, True], [9, 9]) == [0, 0]

    def test_name(self):
        assert UniformDemandPolicy().name == "uniform"
