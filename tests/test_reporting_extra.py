"""Tests for the newer reporting helpers (mean_rows aggregation)."""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchRow
from repro.bench.reporting import mean_rows


def make_row(method, x, objective, runtime=0.1, seed=0, status="ok"):
    return BenchRow(
        label="t",
        method=method,
        objective=objective,
        runtime_sec=runtime if objective is not None else None,
        status=status,
        params={"n": x, "seed": seed},
    )


class TestMeanRows:
    def test_averages_over_seeds(self):
        rows = [
            make_row("wma", 10, 100.0, seed=0),
            make_row("wma", 10, 200.0, seed=1),
            make_row("wma", 20, 50.0, seed=0),
        ]
        out = mean_rows(rows, x_key="n")
        by_x = {(r.method, r.params["n"]): r for r in out}
        assert by_x[("wma", 10)].objective == pytest.approx(150.0)
        assert by_x[("wma", 10)].params["seeds"] == 2
        assert by_x[("wma", 20)].objective == pytest.approx(50.0)

    def test_failed_rows_dropped_from_mean(self):
        rows = [
            make_row("exact", 10, 100.0, seed=0),
            make_row("exact", 10, None, seed=1, status="timeout"),
        ]
        out = mean_rows(rows, x_key="n")
        assert out[0].objective == pytest.approx(100.0)
        assert out[0].status == "ok"

    def test_all_failed_group(self):
        rows = [
            make_row("exact", 10, None, seed=0, status="timeout"),
            make_row("exact", 10, None, seed=1, status="timeout"),
        ]
        out = mean_rows(rows, x_key="n")
        assert out[0].objective is None
        assert out[0].status == "error"

    def test_runtime_averaged(self):
        rows = [
            make_row("wma", 10, 1.0, runtime=0.2, seed=0),
            make_row("wma", 10, 1.0, runtime=0.4, seed=1),
        ]
        out = mean_rows(rows, x_key="n")
        assert out[0].runtime_sec == pytest.approx(0.3)

    def test_order_preserved(self):
        rows = [
            make_row("wma", 20, 1.0),
            make_row("wma", 10, 1.0),
            make_row("hilbert", 20, 1.0),
        ]
        out = mean_rows(rows, x_key="n")
        assert [(r.method, r.params["n"]) for r in out] == [
            ("wma", 20),
            ("wma", 10),
            ("hilbert", 20),
        ]
