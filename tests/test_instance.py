"""Tests for the MCFS instance model."""

from __future__ import annotations

import pytest

from repro.core.instance import MCFSInstance
from repro.errors import InvalidInstanceError
from tests.conftest import build_line_network, build_two_component_network


def make_instance(**overrides) -> MCFSInstance:
    g = build_line_network(10)
    defaults = dict(
        network=g,
        customers=(1, 3, 5),
        facility_nodes=(0, 4, 9),
        capacities=(2, 2, 2),
        k=2,
    )
    defaults.update(overrides)
    return MCFSInstance(**defaults)


class TestValidation:
    def test_valid_instance(self):
        inst = make_instance()
        assert inst.m == 3
        assert inst.l == 3
        assert inst.k == 2

    def test_no_customers_rejected(self):
        with pytest.raises(InvalidInstanceError, match="customers"):
            make_instance(customers=())

    def test_no_facilities_rejected(self):
        with pytest.raises(InvalidInstanceError, match="facilities"):
            make_instance(facility_nodes=(), capacities=())

    def test_misaligned_capacities_rejected(self):
        with pytest.raises(InvalidInstanceError, match="capacities"):
            make_instance(capacities=(1, 2))

    def test_duplicate_facility_nodes_rejected(self):
        with pytest.raises(InvalidInstanceError, match="distinct"):
            make_instance(facility_nodes=(0, 0, 9), capacities=(1, 1, 1))

    def test_customer_outside_graph_rejected(self):
        with pytest.raises(InvalidInstanceError, match="customer"):
            make_instance(customers=(1, 99))

    def test_facility_outside_graph_rejected(self):
        with pytest.raises(InvalidInstanceError, match="facility"):
            make_instance(facility_nodes=(0, 99, 9))

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(InvalidInstanceError, match="capacity"):
            make_instance(capacities=(2, 0, 2))

    def test_k_bounds(self):
        with pytest.raises(InvalidInstanceError, match="k="):
            make_instance(k=0)
        with pytest.raises(InvalidInstanceError, match="k="):
            make_instance(k=4)

    def test_duplicate_customers_allowed(self):
        inst = make_instance(customers=(1, 1, 1))
        assert inst.m == 3


class TestDerived:
    def test_occupancy(self):
        inst = make_instance()  # m=3, mean c=2, k=2
        assert inst.occupancy == pytest.approx(3 / 4)

    def test_mean_capacity(self):
        inst = make_instance(capacities=(1, 2, 6))
        assert inst.mean_capacity == pytest.approx(3.0)

    def test_facility_index_of_node(self):
        inst = make_instance()
        assert inst.facility_index_of_node() == {0: 0, 4: 1, 9: 2}

    def test_describe(self):
        row = make_instance().describe()
        assert row["m"] == 3
        assert row["k"] == 2

    def test_component_structure(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 4),
            facility_nodes=(1, 5),
            capacities=(1, 1),
            k=2,
        )
        s = inst.component_structure()
        assert s.n_components == 2


class TestTransforms:
    def test_restrict_to(self):
        inst = make_instance()
        sub = inst.restrict_to([0, 2])
        assert sub.facility_nodes == (0, 9)
        assert sub.capacities == (2, 2)
        assert sub.k == 2
        assert sub.customers == inst.customers

    def test_restrict_to_caps_k(self):
        inst = make_instance()
        sub = inst.restrict_to([1])
        assert sub.k == 1

    def test_with_uniform_capacities_default_mean(self):
        inst = make_instance(capacities=(1, 2, 6))
        uniform = inst.with_uniform_capacities()
        assert uniform.capacities == (3, 3, 3)

    def test_with_uniform_capacities_explicit(self):
        uniform = make_instance().with_uniform_capacities(7)
        assert uniform.capacities == (7, 7, 7)

    def test_transforms_do_not_mutate_original(self):
        inst = make_instance()
        inst.restrict_to([0])
        inst.with_uniform_capacities(9)
        assert inst.capacities == (2, 2, 2)
        assert inst.l == 3
