"""Tests for the solver runtime: budgets, SolverOptions, fallback chains."""

from __future__ import annotations

import time

import pytest

import repro
from repro import SOLVERS, MCFSInstance, SolverOptions, solve
from repro.bench.harness import run_solvers, solver_row
from repro.core.validation import validate_solution
from repro.datagen import uniform_instance
from repro.errors import BudgetExceeded, SolverError
from repro.obs import metrics
from repro.runtime import (
    DEFAULT_CHAINS,
    Budget,
    chain_for,
    checkpoint,
    grace,
    normalize_options,
    solve_with_fallback,
    spec_for,
    use_budget,
    valid_options,
)


@pytest.fixture(scope="module")
def instance() -> MCFSInstance:
    return uniform_instance(96, seed=3)


# ----------------------------------------------------------------------
# Budget
# ----------------------------------------------------------------------
class TestBudget:
    def test_checkpoint_noop_without_budget(self):
        checkpoint()  # must not raise

    def test_expired_budget_raises_at_checkpoint(self):
        with use_budget(Budget(0.0)):
            with pytest.raises(BudgetExceeded):
                checkpoint()

    def test_unexpired_budget_passes(self):
        with use_budget(Budget(60.0)):
            checkpoint()

    def test_budget_exceeded_is_solver_error(self):
        assert issubclass(BudgetExceeded, SolverError)

    def test_elapsed_remaining_expired(self):
        b = Budget(60.0)
        assert 0.0 <= b.elapsed() < 1.0
        assert 59.0 < b.remaining() <= 60.0
        assert not b.expired()
        assert Budget(0.0).expired()

    def test_stride_batches_clock_reads(self):
        b = Budget(0.0, stride=10)
        with use_budget(b):
            for _ in range(9):
                checkpoint()  # below the stride: no clock read, no raise
            with pytest.raises(BudgetExceeded):
                checkpoint()

    def test_nested_budget_clamped_to_outer_deadline(self):
        with use_budget(Budget(0.0)):
            inner = Budget(100.0)
            with use_budget(inner):
                with pytest.raises(BudgetExceeded):
                    checkpoint()

    def test_nested_budget_may_shorten(self):
        with use_budget(Budget(100.0)):
            with use_budget(Budget(0.0)):
                with pytest.raises(BudgetExceeded):
                    checkpoint()

    def test_grace_suspends_enforcement(self):
        with use_budget(Budget(0.0)):
            with grace():
                checkpoint()
            with pytest.raises(BudgetExceeded):
                checkpoint()

    def test_scope_restores_previous(self):
        from repro.runtime.budget import active

        assert active() is None
        with use_budget(Budget(1.0)) as b:
            assert active() is b
        assert active() is None

    def test_expiry_bumps_counter(self):
        reg = metrics.Registry()
        with metrics.use(reg):
            with use_budget(Budget(0.0)):
                with pytest.raises(BudgetExceeded):
                    checkpoint()
        assert reg.as_dict()["runtime.budget_exceeded"] == 1


# ----------------------------------------------------------------------
# SolverOptions + normalization
# ----------------------------------------------------------------------
class TestSolverOptions:
    def test_coerce_dict_splits_extras(self):
        opts = SolverOptions.coerce({"seed": 3, "tie_breaking": "cost"})
        assert opts.seed == 3
        assert opts.extras == {"tie_breaking": "cost"}

    def test_coerce_none_and_identity(self):
        assert SolverOptions.coerce(None) == SolverOptions()
        opts = SolverOptions(seed=1)
        assert SolverOptions.coerce(opts) is opts

    def test_coerce_rejects_junk(self):
        with pytest.raises(SolverError):
            SolverOptions.coerce(42)

    def test_unknown_kwarg_names_valid_options(self):
        with pytest.raises(SolverError) as exc:
            normalize_options("hilbert", None, {"bogus": 1})
        msg = str(exc.value)
        assert "bogus" in msg and "hilbert" in msg
        for name in ("seed", "time_limit", "workers", "distance_cache"):
            assert name in msg

    def test_unknown_extras_in_options_rejected(self):
        with pytest.raises(SolverError):
            normalize_options(
                "wma", SolverOptions(extras={"mip_gap": 0.1}), {}
            )

    def test_universal_kwargs_override_options(self):
        opts = normalize_options(
            "random", SolverOptions(seed=1), {"seed": 7}
        )
        assert opts.seed == 7

    def test_legacy_solver_kwarg_warns_and_forwards(self):
        with pytest.warns(DeprecationWarning, match="tie_breaking"):
            opts = normalize_options("wma", None, {"tie_breaking": "cost"})
        assert opts.extras == {"tie_breaking": "cost"}

    def test_valid_options_include_extras(self):
        assert "mip_gap" in valid_options("exact")
        assert "pool_size" in valid_options("kmedian-ls")

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError, match="unknown solver method"):
            spec_for("nope")

    def test_merged_merges_extras(self):
        opts = SolverOptions(seed=1, extras={"a": 1}).merged(
            seed=2, extras={"b": 2}
        )
        assert opts.seed == 2
        assert opts.extras == {"a": 1, "b": 2}


# ----------------------------------------------------------------------
# Signature consistency across every registered solver
# ----------------------------------------------------------------------
class TestSignatureConsistency:
    def test_every_solver_is_a_registered_entry_point(self):
        for method, solver in SOLVERS.items():
            assert getattr(solver, "__solver_method__", None) == method
            assert spec_for(method) is solver.__solver_spec__

    def test_every_solver_accepts_solver_options(self, instance):
        for method in SOLVERS:
            sol = SOLVERS[method](instance, options=SolverOptions())
            validate_solution(instance, sol)

    def test_every_solver_accepts_all_universal_kwargs(self, instance):
        # seed/workers/time_limit/distance_cache are accepted uniformly,
        # including by solvers that ignore them.
        opts = SolverOptions(seed=0, time_limit=300.0, workers=1)
        for method in SOLVERS:
            sol = SOLVERS[method](instance, options=opts)
            validate_solution(instance, sol)

    def test_every_solver_rejects_unknown_kwargs_by_name(self, instance):
        for method in SOLVERS:
            with pytest.raises(SolverError, match="no_such_option"):
                SOLVERS[method](instance, no_such_option=1)

    def test_declared_extras_cover_the_historic_kwargs(self):
        assert spec_for("exact").extras == {"mip_gap"}
        assert spec_for("kmedian-ls").extras == {"max_rounds", "pool_size"}
        assert "tie_breaking" in spec_for("wma").extras
        assert "max_rounds" in spec_for("wma-ls").extras
        assert spec_for("hilbert").extras == frozenset()

    def test_default_chains_cover_every_solver(self):
        assert set(DEFAULT_CHAINS) == set(SOLVERS)
        for method, chain in DEFAULT_CHAINS.items():
            assert chain[0] == method
            if method != "hilbert":
                assert chain[-1] == "hilbert"


# ----------------------------------------------------------------------
# chain_for
# ----------------------------------------------------------------------
class TestChainFor:
    def test_defaults(self):
        assert chain_for("exact") == ("exact", "wma", "hilbert")
        assert chain_for("hilbert") == ("hilbert",)
        assert chain_for("wma", "auto") == DEFAULT_CHAINS["wma"]

    def test_disable(self):
        assert chain_for("exact", False) == ("exact",)

    def test_explicit_string_dedupes_and_leads_with_method(self):
        assert chain_for("exact", "exact, wma ,hilbert") == (
            "exact",
            "wma",
            "hilbert",
        )
        assert chain_for("wma", "hilbert") == ("wma", "hilbert")

    def test_explicit_sequence(self):
        assert chain_for("exact", ["wma"]) == ("exact", "wma")

    def test_unknown_method_in_chain_rejected(self):
        with pytest.raises(SolverError):
            chain_for("wma", "gurobi")


# ----------------------------------------------------------------------
# Fallback runner + end-to-end solve()
# ----------------------------------------------------------------------
class TestFallbackRuntime:
    def test_acceptance_exact_tiny_budget_returns_feasible(self):
        # ISSUE acceptance: on the smoke profile, solve(method="exact",
        # time_limit=T) with a deliberately small T returns a feasible
        # validated solution via the fallback chain within ~1.2*T plus
        # fallback overhead -- never an unhandled exception.
        smoke = uniform_instance(256, seed=0)
        T = 0.05
        reg = metrics.Registry()
        started = time.perf_counter()
        with metrics.use(reg):
            sol = solve(
                smoke, method="exact", options=SolverOptions(time_limit=T)
            )
        elapsed = time.perf_counter() - started
        validate_solution(smoke, sol)
        counters = reg.as_dict()
        assert counters.get("runtime.fallbacks", 0) >= 1
        assert sol.meta["runtime"]["fallbacks"] >= 1
        assert sol.meta["runtime"]["requested"] == "exact"
        # Generous constant absorbs the terminal fallback's own cost on
        # slow CI machines; the point is "bounded", not "instant".
        assert elapsed < 1.2 * T + 2.0

    def test_runner_records_attempts(self, instance):
        reg = metrics.Registry()
        with metrics.use(reg):
            result = solve_with_fallback(
                instance, ("exact", "wma", "hilbert"), deadline=0.05
            )
        assert result.requested == "exact"
        assert result.method in ("exact", "wma", "hilbert")
        assert result.runs[-1].status == "ok"
        assert all(r.status != "ok" for r in result.runs[:-1])
        assert reg.as_dict()["runtime.attempts"] == len(result.runs)
        validate_solution(instance, result.solution)

    def test_no_budget_no_fallback_meta(self, instance):
        sol = solve(instance, method="wma")
        assert "runtime" not in sol.meta

    def test_fallback_false_with_deadline_raises_on_expiry(self, instance):
        with pytest.raises(SolverError):
            solve(instance, method="exact", deadline=1e-4, fallback=False)

    def test_explicit_fallback_without_deadline(self, instance):
        sol = solve(instance, method="wma", fallback="auto")
        validate_solution(instance, sol)
        assert sol.meta["runtime"]["method_used"] == "wma"
        assert sol.meta["runtime"]["fallbacks"] == 0

    def test_empty_chain_rejected(self, instance):
        with pytest.raises(SolverError):
            solve_with_fallback(instance, ())

    def test_unknown_method_still_value_error(self, instance):
        with pytest.raises(ValueError, match="unknown method"):
            solve(instance, method="gurobi")

    def test_instance_solve_entry_point(self, instance):
        sol = instance.solve("hilbert")
        validate_solution(instance, sol)
        sol = instance.solve(
            "exact", options=SolverOptions(time_limit=0.05)
        )
        validate_solution(instance, sol)

    def test_solution_runtime_meta_shape(self, instance):
        sol = solve(instance, method="exact", deadline=0.05)
        meta = sol.meta["runtime"]
        assert set(meta) >= {
            "requested",
            "method_used",
            "fallbacks",
            "degraded",
            "attempts",
            "deadline",
        }
        for attempt in meta["attempts"]:
            assert attempt["status"] in ("ok", "timeout", "error")


# ----------------------------------------------------------------------
# Harness + CLI surfaces
# ----------------------------------------------------------------------
class TestSurfaces:
    def test_solver_row_deadline_never_fails(self, instance):
        row = solver_row(instance, "exact", deadline=0.05)
        assert row.status == "ok"
        assert row.objective is not None
        assert row.meta["runtime"]["fallbacks"] >= 1

    def test_run_solvers_deadline_all_ok(self, instance):
        rows = run_solvers(
            instance, ("wma", "hilbert", "exact"), deadline=0.1
        )
        assert [r.status for r in rows] == ["ok", "ok", "ok"]

    def test_run_solvers_budget_free_unchanged(self, instance):
        rows = run_solvers(instance, ("wma", "hilbert"))
        assert all(r.status == "ok" for r in rows)
        assert all("runtime" not in r.meta for r in rows)

    def test_cli_solve_deadline_and_fallback(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io.serialization import save_instance

        path = tmp_path / "inst.npz"
        save_instance(uniform_instance(64, seed=1), str(path))
        rc = main(
            [
                "solve",
                str(path),
                "--method",
                "exact",
                "--deadline",
                "0.05",
                "--fallback",
                "auto",
            ]
        )
        assert rc == 0

    def test_cli_time_limit_applies_to_every_method(self, tmp_path):
        # --time-limit used to be wired for the exact method only; a
        # generous limit on wma must now be accepted and still solve.
        from repro.cli import main
        from repro.io.serialization import save_instance

        path = tmp_path / "inst.npz"
        save_instance(uniform_instance(64, seed=1), str(path))
        rc = main(
            ["solve", str(path), "--method", "wma", "--time-limit", "300"]
        )
        assert rc == 0

    def test_cli_fallback_none_parses(self):
        from repro.cli import _parse_fallback

        assert _parse_fallback(None) is None
        assert _parse_fallback("none") is False
        assert _parse_fallback("auto") == "auto"
        assert _parse_fallback("wma,hilbert") == "wma,hilbert"

    def test_public_exports(self):
        assert repro.SolverOptions is SolverOptions
        assert repro.BudgetExceeded is BudgetExceeded
        assert hasattr(repro.runtime, "solve_with_fallback")
