"""Tests for the urban (Table III proxy) network generators."""

from __future__ import annotations

import pytest

from repro.datagen.urban import city_catalog, grid_city, organic_city, radial_city


class TestGridCity:
    def test_dimensions(self):
        g = grid_city(5, 7, drop_rate=0.0)
        assert g.n_nodes == 35
        # Full grid: 5*6 + 4*7 = 58 edges.
        assert g.n_edges == 58

    def test_drop_rate_reduces_edges(self):
        full = grid_city(10, 10, drop_rate=0.0, seed=1)
        dropped = grid_city(10, 10, drop_rate=0.3, seed=1)
        assert dropped.n_edges < full.n_edges

    def test_has_coords_in_meters(self):
        g = grid_city(4, 4, spacing=100.0, jitter=0.0)
        assert g.has_coords
        assert g.euclidean(0, 1) == pytest.approx(100.0)

    def test_deterministic(self):
        a = grid_city(6, 6, seed=3)
        b = grid_city(6, 6, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())


class TestRadialCity:
    def test_node_count(self):
        g = radial_city(4, 10, drop_rate=0.0)
        assert g.n_nodes == 1 + 4 * 10

    def test_rings_and_spokes_connected(self):
        g = radial_city(3, 8, drop_rate=0.0, jitter=0.0)
        # Drop-free radial city is connected.
        assert g.stats().n_components == 1

    def test_center_links_to_first_ring(self):
        g = radial_city(2, 6, drop_rate=0.0)
        assert g.degree(0) == 6


class TestOrganicCity:
    def test_size_and_low_degree(self):
        g = organic_city(300, seed=2)
        assert g.n_nodes == 300
        stats = g.stats()
        # Table III signature: low average degree.
        assert 1.5 <= stats.avg_degree <= 4.0

    def test_deterministic(self):
        a = organic_city(150, seed=9)
        b = organic_city(150, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())


class TestCatalog:
    def test_four_cities(self):
        catalog = city_catalog(scale=0.1)
        assert set(catalog) == {"aalborg", "riga", "copenhagen", "las_vegas"}

    def test_relative_sizes_match_table3(self):
        catalog = city_catalog(scale=0.15)
        assert (
            catalog["aalborg"].n_nodes
            < catalog["riga"].n_nodes
        )
        assert catalog["las_vegas"].n_nodes > catalog["aalborg"].n_nodes

    def test_degree_signature(self):
        catalog = city_catalog(scale=0.15)
        for name, network in catalog.items():
            avg = network.stats().avg_degree
            assert 1.5 <= avg <= 4.5, f"{name} degree {avg} out of range"

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            city_catalog(scale=0.0)
