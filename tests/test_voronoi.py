"""Tests for network Voronoi partitions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.network.dijkstra import distance_matrix
from repro.network.voronoi import voronoi_cells
from tests.conftest import (
    build_grid_network,
    build_line_network,
    build_random_network,
    build_two_component_network,
)


class TestVoronoi:
    def test_line_partition(self):
        g = build_line_network(7)
        part = voronoi_cells(g, [0, 6])
        assert part.label[1] == 0
        assert part.label[5] == 1
        assert part.dist[5] == pytest.approx(1.0)

    def test_labels_match_nearest_source(self):
        g = build_random_network(40, seed=5)
        sources = [0, 13, 27]
        part = voronoi_cells(g, sources)
        mat = distance_matrix(g, sources, list(range(40)))
        for v in range(40):
            col = mat[:, v]
            if not np.isfinite(col).any():
                assert part.label[v] == -1
                continue
            assert part.dist[v] == pytest.approx(col.min())
            # Ties allowed: the label must achieve the minimum.
            assert col[part.label[v]] == pytest.approx(col.min())

    def test_unreachable_labelled_minus_one(self):
        g = build_two_component_network()
        part = voronoi_cells(g, [0])
        assert part.label[4] == -1
        assert part.label[1] == 0

    def test_cell_members(self):
        g = build_line_network(7)
        part = voronoi_cells(g, [0, 6])
        cell0 = set(part.cell(0).tolist())
        cell1 = set(part.cell(1).tolist())
        assert cell0 | cell1 == set(range(7))
        assert cell0 & cell1 == set()

    def test_adjacency(self):
        g = build_line_network(7)
        part = voronoi_cells(g, [0, 6])
        adj = part.adjacency(g)
        assert adj[0] == {1}
        assert adj[1] == {0}

    def test_adjacency_grid_three_cells(self):
        g = build_grid_network(4, 4)
        part = voronoi_cells(g, [0, 3, 15])
        adj = part.adjacency(g)
        # Every cell touches at least one other on a connected grid.
        assert all(neighbors for neighbors in adj.values())

    def test_requires_sources(self):
        g = build_line_network(3)
        with pytest.raises(GraphError):
            voronoi_cells(g, [])

    def test_source_out_of_range(self):
        g = build_line_network(3)
        with pytest.raises(GraphError):
            voronoi_cells(g, [99])

    def test_duplicate_sources_keep_first_label(self):
        g = build_line_network(5)
        part = voronoi_cells(g, [2, 2])
        assert part.label[2] in (0, 1)
        assert (part.label >= 0).all()
