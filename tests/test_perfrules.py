"""Fixture tests for the loop-cost tier (REP109..REP112).

Each rule gets positive fixtures (the defect fires) and negative
fixtures (the remediated shape is clean), plus the justification-only
suppression contract shared by the whole tier: a bare ``disable``
comment is ignored, only ``disable=REPxxx -- <reason>`` suppresses.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import LintEngine
from repro.analysis.perfrules import (
    HiddenRescanRule,
    HotPathBudgetRule,
    LinearMembershipRule,
    LoopInvariantAllocRule,
)


def run_rule(tmp_path: Path, rule, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return LintEngine(tmp_path, rules=[rule]).run()


def rule_ids(result):
    return [f.rule for f in result.findings]


#: Package-root registry making ``core.a.solve`` a hot entry point.
REGISTRY_FILES = {
    "__init__.py": """
        from core.a import solve
        SOLVERS = {"wma": solve}
        """,
    "core/__init__.py": "",
}


class TestRep109HotPathBudget:
    def test_deep_hot_function_over_default_ceiling(self, tmp_path):
        result = run_rule(
            tmp_path,
            HotPathBudgetRule(),
            {
                **REGISTRY_FILES,
                "core/a.py": """
                    def solve(nodes, edges, customers):
                        for u in nodes:
                            for e in edges:
                                for c in customers:
                                    pass
                    """,
            },
        )
        assert rule_ids(result) == ["REP109"]
        finding = result.findings[0]
        assert "ceiling of depth 2" in finding.message
        assert "O(" in finding.message

    def test_within_default_ceiling_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            HotPathBudgetRule(),
            {
                **REGISTRY_FILES,
                "core/a.py": """
                    def solve(nodes, edges):
                        for u in nodes:
                            for e in edges:
                                pass
                    """,
            },
        )
        assert rule_ids(result) == []

    def test_cold_function_is_never_budgeted(self, tmp_path):
        # Same depth-3 nest, but not reachable from the registry.
        result = run_rule(
            tmp_path,
            HotPathBudgetRule(),
            {
                **REGISTRY_FILES,
                "core/a.py": """
                    def solve(nodes):
                        for u in nodes:
                            pass

                    def offline_report(nodes, edges, customers):
                        for u in nodes:
                            for e in edges:
                                for c in customers:
                                    pass
                    """,
            },
        )
        assert rule_ids(result) == []

    def test_budget_file_raises_module_ceiling(self, tmp_path):
        budgets = tmp_path / "budgets.toml"
        budgets.write_text('[budgets]\n"core.a" = 3\n')
        rule = HotPathBudgetRule()
        rule.budgets_path = budgets
        result = run_rule(
            tmp_path,
            rule,
            {
                **REGISTRY_FILES,
                "core/a.py": """
                    def solve(nodes, edges, customers):
                        for u in nodes:
                            for e in edges:
                                for c in customers:
                                    pass
                    """,
            },
        )
        assert rule_ids(result) == []

    def test_interprocedural_depth_counts(self, tmp_path):
        # One local loop per function, three frames deep: the summary
        # composes to depth 3 and busts the default ceiling even though
        # no single function looks worse than O(n).
        result = run_rule(
            tmp_path,
            HotPathBudgetRule(),
            {
                **REGISTRY_FILES,
                "core/a.py": """
                    def inner(customers):
                        for c in customers:
                            pass

                    def middle(edges, customers):
                        for e in edges:
                            inner(customers)

                    def solve(nodes, edges, customers):
                        for u in nodes:
                            middle(edges, customers)
                    """,
            },
        )
        assert rule_ids(result) == ["REP109"]
        assert "solve" in result.findings[0].symbol


class TestRep110LoopInvariantAlloc:
    def test_invariant_literal_in_instance_loop(self, tmp_path):
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": """
                    def f(nodes, lo, hi):
                        for u in nodes:
                            bounds = [lo, hi]
                            use(u, bounds)
                    """
            },
        )
        assert rule_ids(result) == ["REP110"]
        assert "bounds" in result.findings[0].symbol

    def test_invariant_set_call_in_instance_loop(self, tmp_path):
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": """
                    def f(nodes, blocked):
                        for u in nodes:
                            probe = set(blocked)
                            use(u, probe)
                    """
            },
        )
        assert rule_ids(result) == ["REP110"]

    def test_loop_dependent_alloc_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": """
                    def f(nodes, lo):
                        for u in nodes:
                            pair = [lo, u]
                            use(pair)
                    """
            },
        )
        assert rule_ids(result) == []

    def test_empty_seed_and_mutated_copy_are_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": """
                    def f(nodes, defaults):
                        for u in nodes:
                            acc = []
                            acc.append(u)
                            scratch = list(defaults)
                            scratch.append(u)
                    """
            },
        )
        assert rule_ids(result) == []

    def test_operand_mutated_by_closure_is_clean(self, tmp_path):
        # The regression that produced a false positive on the real
        # tree: the operand is rebound nowhere, but a locally-defined
        # closure called in the loop mutates it in place.
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": """
                    def f(nodes, caps):
                        def grow():
                            caps.append(0)

                        for u in nodes:
                            snapshot = sorted(caps)
                            grow()
                            use(snapshot)
                    """
            },
        )
        assert rule_ids(result) == []

    def test_bounded_loop_is_exempt(self, tmp_path):
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": """
                    def f(lo, hi):
                        for i in range(4):
                            bounds = [lo, hi]
                            use(bounds)
                    """
            },
        )
        assert rule_ids(result) == []


class TestRep111LinearMembership:
    def test_list_probe_in_instance_loop(self, tmp_path):
        result = run_rule(
            tmp_path,
            LinearMembershipRule(),
            {
                "flow/a.py": """
                    def f(nodes, selected: list[int]):
                        for u in nodes:
                            if u in selected:
                                pass
                    """
            },
        )
        assert rule_ids(result) == ["REP111"]
        assert "selected" in result.findings[0].message

    def test_list_built_by_call_is_flagged(self, tmp_path):
        result = run_rule(
            tmp_path,
            LinearMembershipRule(),
            {
                "flow/a.py": """
                    def f(nodes, chosen):
                        order = sorted(chosen)
                        for u in nodes:
                            if u not in order:
                                pass
                    """
            },
        )
        assert rule_ids(result) == ["REP111"]

    def test_set_probe_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            LinearMembershipRule(),
            {
                "flow/a.py": """
                    def f(nodes, selected: set[int]):
                        for u in nodes:
                            if u in selected:
                                pass
                    """
            },
        )
        assert rule_ids(result) == []

    def test_constant_tuple_enum_check_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            LinearMembershipRule(),
            {
                "flow/a.py": """
                    def f(ops):
                        for op in ops:
                            if op.kind in ("add", "drop"):
                                pass
                    """
            },
        )
        assert rule_ids(result) == []

    def test_probe_outside_instance_loop_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            LinearMembershipRule(),
            {
                "flow/a.py": """
                    def f(u, selected: list[int], nodes):
                        for v in nodes:
                            pass
                        return u in selected
                    """
            },
        )
        assert rule_ids(result) == []


class TestRep112HiddenRescan:
    FILES = {
        "flow/__init__.py": "",
        "flow/a.py": """
            def scan(edges):
                for e in edges:
                    pass

            def drive(nodes, edges):
                for u in nodes:
                    scan(edges)
            """,
    }

    def test_instance_call_in_instance_hot_loop(self, tmp_path):
        result = run_rule(tmp_path, HiddenRescanRule(), self.FILES)
        assert rule_ids(result) == ["REP112"]
        finding = result.findings[0]
        assert "scan" in finding.message
        assert "drive" in finding.message

    def test_flat_callee_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            HiddenRescanRule(),
            {
                "flow/__init__.py": "",
                "flow/a.py": """
                    def peek(e):
                        return e.weight

                    def drive(nodes, edges):
                        for e in edges:
                            peek(e)
                    """,
            },
        )
        assert rule_ids(result) == []

    def test_call_outside_loop_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            HiddenRescanRule(),
            {
                "flow/__init__.py": "",
                "flow/a.py": """
                    def scan(edges):
                        for e in edges:
                            pass

                    def drive(nodes, edges):
                        scan(edges)
                        for u in nodes:
                            pass
                    """,
            },
        )
        assert rule_ids(result) == []

    def test_cold_module_is_out_of_scope(self, tmp_path):
        # Identical composition, but under datagen/: not a hot path.
        result = run_rule(
            tmp_path,
            HiddenRescanRule(),
            {
                "datagen/__init__.py": "",
                "datagen/a.py": self.FILES["flow/a.py"],
            },
        )
        assert rule_ids(result) == []


class TestJustificationOnlySuppression:
    BAD_LOOP = """
        def f(nodes, lo, hi):
            for u in nodes:
                bounds = [lo, hi]{comment}
                use(u, bounds)
        """

    def test_bare_disable_does_not_suppress(self, tmp_path):
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": self.BAD_LOOP.format(
                    comment="  # reprolint: disable=REP110"
                )
            },
        )
        assert rule_ids(result) == ["REP110"]
        assert result.suppressed == 0

    def test_justified_disable_suppresses(self, tmp_path):
        result = run_rule(
            tmp_path,
            LoopInvariantAllocRule(),
            {
                "flow/a.py": self.BAD_LOOP.format(
                    comment=(
                        "  # reprolint: disable=REP110 -- rebuilt each "
                        "pass on purpose: the fixture mutates bounds"
                    )
                )
            },
        )
        assert rule_ids(result) == []
        assert result.suppressed == 1

    def test_justified_disable_suppresses_rep112(self, tmp_path):
        result = run_rule(
            tmp_path,
            HiddenRescanRule(),
            {
                "flow/__init__.py": "",
                "flow/a.py": """
                    def scan(edges):
                        for e in edges:
                            pass

                    def drive(nodes, edges):
                        for u in nodes:
                            scan(edges)  # reprolint: disable=REP112 -- rescan per node is the algorithm
                    """,
            },
        )
        assert rule_ids(result) == []
        assert result.suppressed == 1
