"""Tests for the exact MILP solver (the Gurobi stand-in)."""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.exact import lp_lower_bound, solve_exact
from repro.core.instance import MCFSInstance
from repro.core.validation import validate_solution
from repro.errors import InfeasibleInstanceError, MatchingError
from repro.flow.sspa import assign_all
from tests.conftest import (
    build_line_network,
    build_random_instance,
    build_two_component_network,
)


def brute_force_optimum(instance: MCFSInstance) -> float | None:
    best = None
    for combo in itertools.combinations(range(instance.l), instance.k):
        nodes = [instance.facility_nodes[j] for j in combo]
        caps = [instance.capacities[j] for j in combo]
        try:
            result = assign_all(
                instance.network, instance.customers, nodes, caps
            )
        except MatchingError:
            continue
        if best is None or result.cost < best:
            best = result.cost
    return best


class TestSolveExact:
    def test_line_instance(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(2, 3, 6, 7),
            facility_nodes=(0, 2, 7, 9),
            capacities=(4, 4, 4, 4),
            k=2,
        )
        sol = solve_exact(inst)
        validate_solution(inst, sol)
        assert sol.objective == pytest.approx(2.0)
        assert sol.meta["algorithm"] == "exact"

    def test_matches_brute_force_on_random_instances(self):
        checked = 0
        for seed in range(10):
            inst = build_random_instance(seed, cap_range=(2, 5))
            best = brute_force_optimum(inst)
            if best is None:
                with pytest.raises(InfeasibleInstanceError):
                    solve_exact(inst)
                continue
            sol = solve_exact(inst)
            validate_solution(inst, sol)
            assert sol.objective == pytest.approx(best, rel=1e-6)
            checked += 1
        assert checked >= 5

    def test_capacity_constraint_binding(self):
        # One facility cannot absorb everyone; MILP must open two.
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 1, 2),
            facility_nodes=(1, 8),
            capacities=(2, 2),
            k=2,
        )
        sol = solve_exact(inst)
        validate_solution(inst, sol)
        assert len(set(sol.assignment)) == 2

    def test_budget_constraint_binding(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 9),
            facility_nodes=(0, 9),
            capacities=(5, 5),
            k=1,
        )
        sol = solve_exact(inst)
        validate_solution(inst, sol)
        assert len(sol.selected) == 1
        assert sol.objective == pytest.approx(9.0)

    def test_disconnected_components(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(2, 2),
            k=2,
        )
        sol = solve_exact(inst)
        validate_solution(inst, sol)
        assert sorted(sol.selected) == [0, 1]

    def test_unreachable_customer_infeasible(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1,),
            capacities=(9,),
            k=1,
        )
        with pytest.raises(InfeasibleInstanceError, match="reach"):
            solve_exact(inst)

    def test_capacity_infeasible(self):
        inst = MCFSInstance(
            network=build_line_network(5),
            customers=(0, 1, 2),
            facility_nodes=(4,),
            capacities=(2,),
            k=1,
        )
        with pytest.raises(InfeasibleInstanceError):
            solve_exact(inst)


class TestLpBound:
    def test_lower_bounds_optimum(self):
        for seed in range(6):
            inst = build_random_instance(seed, cap_range=(2, 5))
            best = brute_force_optimum(inst)
            if best is None:
                continue
            bound = lp_lower_bound(inst)
            assert bound <= best + 1e-6

    def test_bound_positive_when_travel_needed(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 9),
            facility_nodes=(4,),
            capacities=(5,),
            k=1,
        )
        assert lp_lower_bound(inst) == pytest.approx(4 + 5)
