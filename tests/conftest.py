"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.instance import MCFSInstance
from repro.network.graph import Network


def build_line_network(n: int, spacing: float = 1.0) -> Network:
    """A path graph 0-1-2-...-(n-1) with unit-spacing coordinates."""
    coords = np.array([(i * spacing, 0.0) for i in range(n)])
    edges = [(i, i + 1, spacing) for i in range(n - 1)]
    return Network(n, edges, coords=coords)


def build_grid_network(rows: int, cols: int, spacing: float = 1.0) -> Network:
    """A rows x cols lattice with 4-neighborhood edges."""
    coords = np.array(
        [(c * spacing, r * spacing) for r in range(rows) for c in range(cols)]
    )
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1, spacing))
            if r + 1 < rows:
                edges.append((u, u + cols, spacing))
    return Network(rows * cols, edges, coords=coords)


def build_two_component_network() -> Network:
    """Two disjoint triangles: nodes 0-2 and 3-5."""
    coords = np.array(
        [(0, 0), (1, 0), (0, 1), (10, 10), (11, 10), (10, 11)], dtype=float
    )
    edges = [
        (0, 1, 1.0),
        (1, 2, math.sqrt(2)),
        (0, 2, 1.0),
        (3, 4, 1.0),
        (4, 5, math.sqrt(2)),
        (3, 5, 1.0),
    ]
    return Network(6, edges, coords=coords)


def build_random_network(
    n: int, seed: int = 0, avg_links: int = 3
) -> Network:
    """Random proximity network used by randomized tests.

    Each node links to its ``avg_links`` nearest neighbors; connected
    enough for meaningful shortest paths while staying irregular.
    """
    rng = np.random.default_rng(seed)
    coords = rng.random((n, 2))
    edges = set()
    for u in range(n):
        d2 = ((coords - coords[u]) ** 2).sum(axis=1)
        order = np.argsort(d2)
        for v in order[1 : avg_links + 1]:
            v = int(v)
            edges.add((min(u, v), max(u, v)))
    weighted = [
        (u, v, max(float(np.hypot(*(coords[u] - coords[v]))), 1e-9))
        for u, v in sorted(edges)
    ]
    return Network(n, weighted, coords=coords)


def build_random_instance(
    seed: int,
    *,
    n: int = 30,
    m: int = 6,
    l: int = 8,
    k: int = 3,
    cap_range: tuple[int, int] = (2, 5),
) -> MCFSInstance:
    """A random small instance for solver cross-checks."""
    network = build_random_network(n, seed=seed)
    rng = np.random.default_rng(seed + 10_000)
    customers = [int(v) for v in rng.choice(n, size=m, replace=True)]
    facilities = sorted(int(v) for v in rng.choice(n, size=l, replace=False))
    capacities = [int(c) for c in rng.integers(cap_range[0], cap_range[1], size=l)]
    return MCFSInstance(
        network=network,
        customers=tuple(customers),
        facility_nodes=tuple(facilities),
        capacities=tuple(capacities),
        k=k,
        name=f"random-{seed}",
    )


@pytest.fixture
def line5() -> Network:
    """Path graph on 5 nodes."""
    return build_line_network(5)


@pytest.fixture
def grid4x4() -> Network:
    """4x4 lattice."""
    return build_grid_network(4, 4)


@pytest.fixture
def two_components() -> Network:
    """Two disjoint triangles."""
    return build_two_component_network()


@pytest.fixture
def random_network() -> Network:
    """A 40-node random proximity network."""
    return build_random_network(40, seed=1)
