"""Tests for the uncapacitated k-median local-search baseline."""

from __future__ import annotations

import pytest

from repro import solve, validate_solution
from repro.baselines.kmedian_ls import _uncapacitated_cost, solve_kmedian_ls
from repro.core.instance import MCFSInstance
from repro.errors import InfeasibleInstanceError
from tests.conftest import (
    build_grid_network,
    build_line_network,
    build_random_instance,
    build_two_component_network,
)


class TestUncapacitatedCost:
    def test_nearest_open_facility(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 9),
            facility_nodes=(2, 7),
            capacities=(1, 1),
            k=2,
        )
        assert _uncapacitated_cost(inst, [0, 1]) == pytest.approx(2 + 2)
        assert _uncapacitated_cost(inst, [0]) == pytest.approx(2 + 7)

    def test_unreachable_is_inf(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(2, 2),
            k=2,
        )
        assert _uncapacitated_cost(inst, [0]) == float("inf")


class TestSolveKMedianLs:
    def test_valid_on_random_instances(self):
        for seed in range(6):
            inst = build_random_instance(seed, cap_range=(4, 8))
            sol = solve_kmedian_ls(inst, seed=seed)
            validate_solution(inst, sol)
            assert sol.meta["algorithm"] == "kmedian-ls"

    def test_finds_obvious_medians_with_loose_capacity(self):
        # Two far customer clusters; two obviously best facilities.
        inst = MCFSInstance(
            network=build_line_network(20),
            customers=(0, 1, 2, 17, 18, 19),
            facility_nodes=(1, 9, 10, 18),
            capacities=(10, 10, 10, 10),
            k=2,
        )
        sol = solve_kmedian_ls(inst, seed=0, pool_size=8)
        validate_solution(inst, sol)
        assert sorted(sol.selected) == [0, 3]
        assert sol.objective == pytest.approx(4.0)

    def test_capacity_repair_under_tightness(self):
        # Uncapacitated optimum concentrates on one node; hard capacity 2
        # forces a repaired, feasible outcome.
        inst = MCFSInstance(
            network=build_grid_network(4, 4),
            customers=(5, 5, 5, 5),
            facility_nodes=(5, 0, 15),
            capacities=(2, 2, 2),
            k=2,
        )
        sol = solve_kmedian_ls(inst, seed=1, pool_size=4)
        validate_solution(inst, sol)
        loads = sol.load_per_facility()
        assert all(
            loads[j] <= inst.capacities[j] for j in sol.selected
        )

    def test_infeasible_raises(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(5, 5),
            k=1,
        )
        with pytest.raises(InfeasibleInstanceError):
            solve_kmedian_ls(inst)

    def test_registered_in_solver_registry(self):
        inst = build_random_instance(1, cap_range=(4, 8))
        sol = solve(inst, method="kmedian-ls", seed=2)
        validate_solution(inst, sol)

    def test_uncapacitated_cost_lower_bounds_objective(self):
        """The search's internal cost ignores capacities, so the final
        capacity-aware objective can only be >= it."""
        for seed in range(4):
            inst = build_random_instance(seed, cap_range=(2, 4))
            sol = solve_kmedian_ls(inst, seed=seed)
            if not sol.meta["selection_repaired"]:
                assert (
                    sol.objective >= sol.meta["uncapacitated_cost"] - 1e-9
                )
