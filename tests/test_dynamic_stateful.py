"""Stateful property test of the DynamicAllocator.

Hypothesis drives random interleavings of arrivals, departures, and lazy
re-optimizations against a model; after every step the allocator must be
(a) capacity-feasible and (b) -- whenever auto-optimality applies --
cost-equal to a fresh optimal assignment of the surviving customers.
"""

from __future__ import annotations

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.dynamic import DynamicAllocator
from repro.core.instance import MCFSInstance
from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from tests.conftest import build_grid_network

GRID = build_grid_network(5, 5)
FACILITIES = (0, 12, 24)
CAPACITIES = (3, 3, 3)


def optimal_cost(nodes) -> float:
    if not nodes:
        return 0.0
    return assign_all(
        GRID,
        list(nodes),
        list(FACILITIES),
        list(CAPACITIES),
    ).cost


class AllocatorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        instance = MCFSInstance(
            network=GRID,
            customers=(6,),
            facility_nodes=FACILITIES,
            capacities=CAPACITIES,
            k=3,
        )
        self.alloc = DynamicAllocator(instance, [0, 1, 2])
        self.nodes: dict[int, int] = {0: 6}  # handle -> node

    @rule(node=st.integers(0, 24))
    def arrive(self, node):
        if len(self.nodes) >= sum(CAPACITIES):
            with pytest.raises(MatchingError):
                self.alloc.add_customer(node)
            return
        handle = self.alloc.add_customer(node)
        self.nodes[handle] = node

    @precondition(lambda self: self.nodes)
    @rule(pick=st.integers(0, 10_000))
    def depart(self, pick):
        handle = sorted(self.nodes)[pick % len(self.nodes)]
        self.alloc.remove_customer(handle)
        del self.nodes[handle]

    @invariant()
    def capacity_feasible(self):
        loads = self.alloc.load_per_facility()
        for j, load in loads.items():
            assert load <= CAPACITIES[j]
        assert sum(loads.values()) == len(self.nodes)

    @invariant()
    def cost_is_optimal(self):
        expected = optimal_cost(list(self.nodes.values()))
        assert self.alloc.cost == pytest.approx(expected, rel=1e-9)


TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)
