"""Stateful property tests of the dynamic layer.

Hypothesis drives random interleavings of mutations against a model:

* :class:`AllocatorMachine` exercises the legacy
  :class:`~repro.core.dynamic.DynamicAllocator` facade (arrivals and
  departures only);
* :class:`ServeMachine` drives the full typed-mutation API of
  :class:`~repro.serve.ServeEngine` -- arrivals, departures, capacity
  re-rates, and edge retimes -- in randomly sized batches.

After every step the engine must be (a) capacity-feasible and (b) --
whenever ``staleness == "optimal"`` -- cost-equal to a fresh cold
``assign_all`` of the surviving customers on the *current* network.
"""

from __future__ import annotations

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.dynamic import DynamicAllocator
from repro.core.instance import MCFSInstance
from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from repro.serve import (
    CapacityChange,
    CustomerArrive,
    CustomerDepart,
    EdgeRetime,
    ServeEngine,
)
from tests.conftest import build_grid_network

# The legacy facade under test warns by design.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

GRID = build_grid_network(5, 5)
FACILITIES = (0, 12, 24)
CAPACITIES = (3, 3, 3)


def optimal_cost(nodes) -> float:
    if not nodes:
        return 0.0
    return assign_all(
        GRID,
        list(nodes),
        list(FACILITIES),
        list(CAPACITIES),
    ).cost


class AllocatorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        instance = MCFSInstance(
            network=GRID,
            customers=(6,),
            facility_nodes=FACILITIES,
            capacities=CAPACITIES,
            k=3,
        )
        self.alloc = DynamicAllocator(instance, [0, 1, 2])
        self.nodes: dict[int, int] = {0: 6}  # handle -> node

    @rule(node=st.integers(0, 24))
    def arrive(self, node):
        if len(self.nodes) >= sum(CAPACITIES):
            with pytest.raises(MatchingError):
                self.alloc.add_customer(node)
            return
        handle = self.alloc.add_customer(node)
        self.nodes[handle] = node

    @precondition(lambda self: self.nodes)
    @rule(pick=st.integers(0, 10_000))
    def depart(self, pick):
        handle = sorted(self.nodes)[pick % len(self.nodes)]
        self.alloc.remove_customer(handle)
        del self.nodes[handle]

    @invariant()
    def capacity_feasible(self):
        loads = self.alloc.load_per_facility()
        for j, load in loads.items():
            assert load <= CAPACITIES[j]
        assert sum(loads.values()) == len(self.nodes)

    @invariant()
    def cost_is_optimal(self):
        expected = optimal_cost(list(self.nodes.values()))
        assert self.alloc.cost == pytest.approx(expected, rel=1e-9)


TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)


class ServeMachine(RuleBasedStateMachine):
    """Random typed-mutation batches vs the cold ``assign_all`` oracle."""

    @initialize()
    def setup(self):
        instance = MCFSInstance(
            network=GRID,
            customers=(6,),
            facility_nodes=FACILITIES,
            capacities=CAPACITIES,
            k=3,
        )
        self.engine = ServeEngine(instance, [0, 1, 2], cache=4)
        self.nodes: dict[int, int] = {0: 6}  # handle -> node
        self.caps: dict[int, int] = dict(zip(FACILITIES, CAPACITIES))

    def _apply(self, mutations):
        result = self.engine.apply(mutations)
        for outcome in result.outcomes:
            if outcome.status != "applied":
                continue
            mutation = outcome.mutation
            if isinstance(mutation, CustomerArrive):
                self.nodes[outcome.handle] = mutation.node
            elif isinstance(mutation, CustomerDepart):
                self.nodes.pop(mutation.handle, None)
            elif isinstance(mutation, CapacityChange):
                self.caps[mutation.facility] = mutation.capacity
        return result

    @rule(batch=st.lists(st.integers(0, 24), min_size=1, max_size=4))
    def arrive_batch(self, batch):
        free = sum(self.caps.values()) - len(self.nodes)
        result = self._apply([CustomerArrive(node) for node in batch])
        # The grid is connected, so exactly the seats that exist fill up.
        assert result.applied == min(len(batch), free)
        assert result.rejected == len(batch) - result.applied

    @precondition(lambda self: self.nodes)
    @rule(pick=st.integers(0, 10_000))
    def depart(self, pick):
        handle = sorted(self.nodes)[pick % len(self.nodes)]
        result = self._apply([CustomerDepart(handle)])
        assert result.outcomes[0].status == "applied"
        assert handle not in self.nodes

    @rule(which=st.integers(0, 2), delta=st.integers(1, 2))
    def grow_capacity(self, which, delta):
        fnode = FACILITIES[which]
        result = self._apply([CapacityChange(fnode, self.caps[fnode] + delta)])
        assert result.outcomes[0].status == "applied"

    @rule(which=st.integers(0, 2), delta=st.integers(1, 2))
    def shrink_capacity(self, which, delta):
        fnode = FACILITIES[which]
        new_cap = max(0, self.caps[fnode] - delta)
        outcome = self._apply([CapacityChange(fnode, new_cap)]).outcomes[0]
        # Rejected only when the cut would strand customers; the model
        # capacity then stays put (handled in _apply).
        if outcome.status == "rejected":
            assert len(self.nodes) > sum(self.caps.values()) - (
                self.caps[fnode] - new_cap
            )
        else:
            assert self.caps[fnode] == new_cap

    @rule(edge=st.integers(0, 10_000), scale=st.sampled_from([0.5, 1.5, 3.0]))
    def retime(self, edge, scale):
        edges = list(self.engine.network.edges())
        u, v, w = edges[edge % len(edges)]
        result = self._apply([EdgeRetime(int(u), int(v), float(w) * scale)])
        assert result.outcomes[0].status == "applied"
        assert result.global_repair

    @invariant()
    def capacity_feasible(self):
        loads = self.engine.load_per_facility()
        for j, load in loads.items():
            assert load <= self.caps[FACILITIES[j]]
        assert sum(loads.values()) == len(self.nodes)
        assert self.engine.n_active == len(self.nodes)

    @invariant()
    def cost_matches_cold_solve(self):
        assert self.engine.staleness == "optimal"  # auto_repair on
        if not self.nodes:
            assert self.engine.cost == 0.0
            return
        cold = assign_all(
            self.engine.network,
            [self.nodes[h] for h in sorted(self.nodes)],
            list(FACILITIES),
            [self.caps[f] for f in FACILITIES],
        )
        assert self.engine.cost == cold.cost  # bit-identical, not approx


TestServeStateful = ServeMachine.TestCase
TestServeStateful.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)
