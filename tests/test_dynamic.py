"""Tests for the dynamic customer reallocation layer.

The module under test is now a deprecated facade over
:class:`repro.serve.ServeEngine` (see ``docs/api.md``); these tests pin
the legacy behavior the shim must preserve, warnings silenced.
"""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.core.dynamic import DynamicAllocator
from repro.core.instance import MCFSInstance
from repro.errors import InvalidInstanceError, MatchingError
from repro.flow.sspa import assign_all
from tests.conftest import build_line_network


def line_instance() -> MCFSInstance:
    return MCFSInstance(
        network=build_line_network(12),
        customers=(1, 10),
        facility_nodes=(0, 5, 11),
        capacities=(2, 2, 2),
        k=3,
    )


def optimal_cost(instance, selected, nodes) -> float:
    sub_nodes = [instance.facility_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    return assign_all(instance.network, list(nodes), sub_nodes, sub_caps).cost


class TestInitialization:
    def test_initial_assignment_optimal(self):
        inst = line_instance()
        alloc = DynamicAllocator(inst, [0, 1, 2])
        assert alloc.n_active == 2
        assert alloc.cost == pytest.approx(
            optimal_cost(inst, [0, 1, 2], inst.customers)
        )

    def test_empty_selection_rejected(self):
        with pytest.raises(InvalidInstanceError):
            DynamicAllocator(line_instance(), [])

    def test_load_and_residual(self):
        inst = line_instance()
        alloc = DynamicAllocator(inst, [0, 1, 2])
        loads = alloc.load_per_facility()
        assert sum(loads.values()) == 2
        assert alloc.residual_capacity() == 6 - 2


class TestArrivals:
    def test_arrival_assigned_optimally(self):
        inst = line_instance()
        alloc = DynamicAllocator(inst, [0, 1, 2])
        handle = alloc.add_customer(6)
        assert alloc.facility_of(handle) == 1  # node 5 is nearest
        assert alloc.cost == pytest.approx(
            optimal_cost(inst, [0, 1, 2], [1, 10, 6])
        )

    def test_arrival_can_rewire(self):
        # Facility capacities force the newcomer's nearest seat to be
        # freed by moving an earlier customer.  Old customer at node 6
        # holds facility 0 (node 5, capacity 1); the newcomer lands
        # exactly on node 5.  Optimal: newcomer takes facility 0 (cost 0)
        # and the old customer moves to facility 1 (node 10, cost 4) --
        # total 4, strictly better than keeping the old assignment
        # (1 + 5 = 6).
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(6,),
            facility_nodes=(5, 10),
            capacities=(1, 1),
            k=2,
        )
        alloc = DynamicAllocator(inst, [0, 1])
        assert alloc.facility_of(0) == 0
        alloc.add_customer(5)
        assert alloc.cost == pytest.approx(4.0)
        assert alloc.facility_of(0) == 1

    def test_arrival_beyond_capacity_raises_and_rolls_back(self):
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(0, 1),
            facility_nodes=(2,),
            capacities=(2,),
            k=1,
        )
        alloc = DynamicAllocator(inst, [0])
        with pytest.raises(MatchingError):
            alloc.add_customer(3)
        assert alloc.n_active == 2
        # Allocator still usable after the failed arrival.
        assert alloc.cost == pytest.approx(2 + 1)

    def test_events_recorded(self):
        inst = line_instance()
        alloc = DynamicAllocator(inst, [0, 1, 2])
        alloc.add_customer(6)
        kinds = [e.kind for e in alloc.events]
        assert kinds.count("arrival") == 3


class TestDepartures:
    def test_departure_frees_capacity(self):
        inst = line_instance()
        alloc = DynamicAllocator(inst, [0, 1, 2])
        before = alloc.residual_capacity()
        alloc.remove_customer(0)
        assert alloc.n_active == 1
        assert alloc.residual_capacity() == before + 1

    def test_departure_triggers_reoptimization(self):
        # Two customers compete for one seat at the good facility; when
        # the winner leaves, the loser must move into the freed seat.
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(5, 4),
            facility_nodes=(5, 9),
            capacities=(1, 5),
            k=2,
        )
        alloc = DynamicAllocator(inst, [0, 1])
        # Customer 0 (node 5) takes facility 0 at cost 0; customer 1
        # (node 4) is pushed to facility 1 at cost 5.
        assert alloc.cost == pytest.approx(5.0)
        alloc.remove_customer(0)
        # Customer 1 should now occupy facility 0 at cost 1.
        assert alloc.cost == pytest.approx(1.0)
        assert alloc.facility_of(1) == 0

    def test_lazy_mode_defers_reoptimization(self):
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(5, 4),
            facility_nodes=(5, 9),
            capacities=(1, 5),
            k=2,
        )
        alloc = DynamicAllocator(inst, [0, 1], auto_reoptimize=False)
        alloc.remove_customer(0)
        assert alloc.cost == pytest.approx(5.0)  # stale but feasible
        moved = alloc.reoptimize()
        assert moved == 1
        assert alloc.cost == pytest.approx(1.0)

    def test_double_remove_rejected(self):
        inst = line_instance()
        alloc = DynamicAllocator(inst, [0, 1, 2])
        alloc.remove_customer(0)
        with pytest.raises(InvalidInstanceError):
            alloc.remove_customer(0)

    def test_handles_stable_across_reoptimize(self):
        inst = line_instance()
        alloc = DynamicAllocator(inst, [0, 1, 2])
        h = alloc.add_customer(6)
        alloc.remove_customer(0)
        assert alloc.facility_of(h) in (0, 1, 2)
        assert alloc.facility_of(1) in (0, 1, 2)


class TestChurnOptimality:
    def test_random_churn_stays_optimal(self):
        """After any arrival/departure sequence, cost equals a fresh
        optimal assignment of the surviving customers."""
        from tests.conftest import build_grid_network

        g = build_grid_network(6, 7)  # connected by construction
        rng = np.random.default_rng(42)
        inst = MCFSInstance(
            network=g,
            customers=tuple(int(v) for v in rng.choice(42, size=6)),
            facility_nodes=(2, 11, 25, 33),
            capacities=(3, 3, 3, 3),
            k=4,
        )
        alloc = DynamicAllocator(inst, [0, 1, 2, 3])
        live = list(range(6))
        for step in range(25):
            if live and rng.random() < 0.45:
                victim = live.pop(int(rng.integers(len(live))))
                alloc.remove_customer(victim)
            else:
                node = int(rng.integers(42))
                try:
                    live.append(alloc.add_customer(node))
                except MatchingError:
                    continue
            active_nodes = [
                alloc._node_of_handle[h] for h in live
            ]
            if active_nodes:
                ref = optimal_cost(inst, [0, 1, 2, 3], active_nodes)
                assert alloc.cost == pytest.approx(ref, rel=1e-9), step
