"""Tests for the Network graph representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.network.graph import Network
from tests.conftest import build_grid_network, build_line_network


class TestConstruction:
    def test_basic_construction(self):
        g = Network(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.n_nodes == 3
        assert g.n_edges == 2
        assert not g.directed

    def test_empty_graph(self):
        g = Network(0, [])
        assert g.n_nodes == 0
        assert g.n_edges == 0

    def test_isolated_nodes(self):
        g = Network(5, [(0, 1, 1.0)])
        assert g.degree(4) == 0
        assert g.degree(0) == 1

    def test_negative_n_nodes_rejected(self):
        with pytest.raises(GraphError):
            Network(-1, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError, match="outside"):
            Network(2, [(0, 2, 1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Network(2, [(1, 1, 1.0)])

    def test_zero_weight_rejected(self):
        with pytest.raises(GraphError, match="weight"):
            Network(2, [(0, 1, 0.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError, match="weight"):
            Network(2, [(0, 1, -3.0)])

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphError, match="weight"):
            Network(2, [(0, 1, float("nan"))])

    def test_inf_weight_rejected(self):
        with pytest.raises(GraphError, match="weight"):
            Network(2, [(0, 1, float("inf"))])

    def test_coords_shape_enforced(self):
        with pytest.raises(GraphError, match="coords"):
            Network(3, [(0, 1, 1.0)], coords=np.zeros((2, 2)))

    def test_parallel_edges_allowed(self):
        g = Network(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert g.n_edges == 2
        assert g.degree(0) == 2


class TestAccessors:
    def test_neighbors_undirected_both_ways(self):
        g = Network(3, [(0, 1, 1.5)])
        assert list(g.neighbors(0)) == [(1, 1.5)]
        assert list(g.neighbors(1)) == [(0, 1.5)]

    def test_neighbors_directed_one_way(self):
        g = Network(3, [(0, 1, 1.5)], directed=True)
        assert list(g.neighbors(0)) == [(1, 1.5)]
        assert list(g.neighbors(1)) == []

    def test_degree_counts(self):
        g = build_grid_network(3, 3)
        assert g.degree(4) == 4  # center
        assert g.degree(0) == 2  # corner

    def test_edges_iterates_input_edges(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0)]
        g = Network(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_edge_lengths(self):
        g = Network(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert sorted(g.edge_lengths()) == [1.0, 2.0]

    def test_node_range_check(self):
        g = Network(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            g.degree(5)
        with pytest.raises(GraphError):
            list(g.neighbors(-1))

    def test_coords_missing_raises(self):
        g = Network(2, [(0, 1, 1.0)])
        assert not g.has_coords
        with pytest.raises(GraphError, match="coordinates"):
            _ = g.coords

    def test_euclidean(self):
        g = build_line_network(3, spacing=2.0)
        assert g.euclidean(0, 2) == pytest.approx(4.0)

    def test_repr(self):
        g = Network(2, [(0, 1, 1.0)])
        assert "n_nodes=2" in repr(g)


class TestStats:
    def test_stats_line(self):
        g = build_line_network(4)
        stats = g.stats()
        assert stats.n_nodes == 4
        assert stats.n_edges == 3
        assert stats.max_degree == 2
        assert stats.avg_degree == pytest.approx(1.5)
        assert stats.avg_edge_length == pytest.approx(1.0)
        assert stats.n_components == 1

    def test_stats_disconnected(self):
        g = Network(4, [(0, 1, 1.0)])
        assert g.stats().n_components == 3

    def test_stats_as_row(self):
        row = build_line_network(3).stats().as_row()
        assert row["nodes"] == 3
        assert row["edges"] == 2
        assert "avg_degree" in row


class TestNetworkxInterop:
    def test_round_trip_undirected(self):
        g = build_grid_network(3, 3)
        back = Network.from_networkx(g.to_networkx())
        assert back.n_nodes == g.n_nodes
        assert back.n_edges == g.n_edges
        assert sorted(back.edges()) == sorted(g.edges())
        assert np.allclose(back.coords, g.coords)

    def test_round_trip_directed(self):
        g = Network(3, [(0, 1, 1.0), (2, 1, 2.0)], directed=True)
        back = Network.from_networkx(g.to_networkx())
        assert back.directed
        assert sorted(back.edges()) == sorted(g.edges())

    def test_from_networkx_rejects_sparse_labels(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 5, weight=1.0)
        with pytest.raises(GraphError, match="dense"):
            Network.from_networkx(g)

    def test_from_networkx_default_weight(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1)
        net = Network.from_networkx(g)
        assert list(net.edges()) == [(0, 1, 1.0)]


class TestCsr:
    def test_csr_arrays_consistent(self):
        g = build_grid_network(3, 3)
        indptr, indices, weights = g.csr
        assert indptr[-1] == len(indices) == len(weights)
        # Every arc's reverse exists in an undirected graph.
        arcs = set()
        for u in range(g.n_nodes):
            for pos in range(indptr[u], indptr[u + 1]):
                arcs.add((u, int(indices[pos])))
        assert all((v, u) in arcs for (u, v) in arcs)
