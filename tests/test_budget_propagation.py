"""Regression tests: ``BudgetExceeded`` always escapes broad handlers.

REP106 rewrote every ``except Exception`` that sat between a budget
checkpoint and :func:`~repro.runtime.runner.solve_with_fallback`.  These
tests inject faults through :mod:`repro.runtime.faults` and expired
budgets to prove the deadline actually propagates from each remediated
site -- and that the handlers still swallow what they are *supposed* to
swallow (corrupt blobs, ordinary solver failures).
"""

from __future__ import annotations

import pytest

from repro.bench.robustness import drift_study
from repro.core.validation import validate_solution
from repro.errors import BudgetExceeded, SolverError
from repro.network.ch import ContractionHierarchy
from repro.network.oracle import AltOracle
from repro.network.parallel import ParallelDistanceEngine
from repro.runtime import (
    Budget,
    FaultPlan,
    budget as budget_mod,
    solve_with_fallback,
    use_faults,
)
from tests.conftest import (
    build_grid_network,
    build_random_instance,
    build_random_network,
)


@pytest.fixture(scope="module")
def network():
    return build_grid_network(5, 5)


@pytest.fixture(scope="module")
def oracle_blob(network, tmp_path_factory):
    path = tmp_path_factory.mktemp("blobs") / "alt.npz"
    AltOracle.build(network, n_landmarks=3, seed=0).save(str(path))
    return str(path)


@pytest.fixture(scope="module")
def ch_blob(network, tmp_path_factory):
    path = tmp_path_factory.mktemp("blobs") / "ch.npz"
    ContractionHierarchy.build(network).save(str(path))
    return str(path)


class TestOracleLoad:
    def test_expired_budget_propagates(self, network, oracle_blob):
        # The injected delay makes the very first checkpoint blow the
        # budget: load must raise, not fall back to "rebuild".
        plan = FaultPlan(dijkstra_delay_sec=0.1)
        with use_faults(plan), budget_mod.use(Budget(0.05)):
            with pytest.raises(BudgetExceeded):
                AltOracle.load(oracle_blob, network)

    def test_corrupt_blob_still_returns_none(self, network, tmp_path):
        bad = tmp_path / "alt.npz"
        bad.write_bytes(b"not an npz archive")
        assert AltOracle.load(str(bad), network) is None

    def test_unbudgeted_load_roundtrips(self, network, oracle_blob):
        oracle = AltOracle.load(oracle_blob, network)
        assert oracle is not None
        assert oracle.fingerprint == network.fingerprint


class TestHierarchyLoad:
    def test_expired_budget_propagates(self, network, ch_blob):
        plan = FaultPlan(dijkstra_delay_sec=0.1)
        with use_faults(plan), budget_mod.use(Budget(0.05)):
            with pytest.raises(BudgetExceeded):
                ContractionHierarchy.load(ch_blob, network)

    def test_corrupt_blob_still_returns_none(self, network, tmp_path):
        bad = tmp_path / "ch.npz"
        bad.write_bytes(b"garbage")
        assert ContractionHierarchy.load(str(bad), network) is None


class TestParallelWorkers:
    def test_worker_deadline_reaches_parent(self):
        # Budget and fault scopes are entered *before* the pool exists,
        # so fork-started workers inherit both; each in-worker Dijkstra
        # checkpoint then sleeps past the deadline and the raise must
        # cross the pool boundary intact.
        network = build_random_network(60, seed=1)
        engine = ParallelDistanceEngine(
            network, 2, min_sources=1, min_work=1
        )
        sources = list(range(16))
        plan = FaultPlan(dijkstra_delay_sec=0.05)
        with engine, use_faults(plan), budget_mod.use(Budget(0.1)):
            with pytest.raises(BudgetExceeded):
                engine.distance_matrix(sources, sources)

    def test_chain_turns_worker_timeout_into_fallback(self):
        # End to end: the cooperative timeout surfaces inside
        # solve_with_fallback as a "timeout" SolverRun and the terminal
        # method still answers under grace.
        from repro.datagen import uniform_instance

        instance = uniform_instance(96, seed=3)
        plan = FaultPlan(dijkstra_delay_sec=0.005)
        with use_faults(plan):
            result = solve_with_fallback(
                instance, ("wma", "hilbert"), deadline=0.02
            )
        validate_solution(instance, result.solution)
        statuses = [run.status for run in result.runs]
        degraded = result.solution.meta.get("degraded", False)
        assert "timeout" in statuses or degraded


class TestDriftStudy:
    def _case(self):
        instance = build_random_instance(2, n=40)
        result = solve_with_fallback(instance, "wma")
        return instance, result.solution

    def test_budget_exceeded_propagates(self):
        instance, solution = self._case()

        def deadline_solver(_inst):
            raise BudgetExceeded("injected deadline")

        with pytest.raises(BudgetExceeded):
            drift_study(
                instance,
                solution,
                fractions=(0.5,),
                solver=deadline_solver,
            )

    def test_ordinary_solver_failure_is_narrowed(self):
        instance, solution = self._case()

        def broken_solver(_inst):
            raise SolverError("injected failure")

        points = drift_study(
            instance, solution, fractions=(0.5,), solver=broken_solver
        )
        assert len(points) == 1
        assert points[0].fresh_cost is None
        assert points[0].regret is None
