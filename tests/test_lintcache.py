"""Tests for the incremental lint cache.

The contract under test (docs/dev.md, "Incremental linting"): a warm
run with no edits re-lints zero files and reproduces the cold findings
byte-for-byte; editing one file re-lints exactly that file plus its
reverse-import closure; any change to the rule set or baseline flips
the run signature and silently falls back to a full lint.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import LintEngine
from repro.analysis.cache import (
    LintCache,
    default_cache_path,
    dependents_closure,
    digest_source,
    run_signature,
)
from repro.analysis.perfrules import (
    HiddenRescanRule,
    LinearMembershipRule,
    LoopInvariantAllocRule,
)

#: A three-module tree: b imports a, c is independent.  ``a.f`` carries
#: a REP110 finding so cached local findings are non-trivial.
TREE = {
    "flow/__init__.py": "",
    "flow/a.py": """
        def f(nodes, lo, hi):
            for u in nodes:
                bounds = [lo, hi]
                use(u, bounds)
        """,
    "flow/b.py": """
        from flow.a import f

        def g(nodes):
            return f(nodes, 0, 1)
        """,
    "flow/c.py": """
        def lonely(x):
            return x + 1
        """,
}


def write_tree(tmp_path: Path, files=TREE):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))


def rules():
    # One global rule (finalize over the project) + two local rules
    # (replayable from cache) exercises both engine paths.
    return [
        HiddenRescanRule(),
        LoopInvariantAllocRule(),
        LinearMembershipRule(),
    ]


def dump(result) -> str:
    """Byte-stable serialization of the findings a run reports."""
    return json.dumps(
        {
            "findings": [f.as_dict() for f in result.findings],
            "suppressed": result.suppressed,
            "files": result.files_scanned,
        },
        sort_keys=True,
    )


class TestWarmNoChange:
    def test_relints_nothing_and_reproduces_findings(self, tmp_path):
        write_tree(tmp_path)
        cache = LintCache(tmp_path / ".cache" / "cache.json")

        cold = LintEngine(tmp_path, rules=rules()).run(cache=cache)
        assert cold.relinted_files is None  # nothing cached yet
        assert [f.rule for f in cold.findings] == ["REP110"]

        warm = LintEngine(tmp_path, rules=rules()).run(cache=cache)
        assert warm.relinted_files == []
        assert warm.relinted_count == 0
        assert dump(warm) == dump(cold)

    def test_cache_file_is_written_and_reused(self, tmp_path):
        write_tree(tmp_path)
        cache_path = tmp_path / ".cache" / "cache.json"
        LintEngine(tmp_path, rules=rules()).run(
            cache=LintCache(cache_path)
        )
        assert cache_path.exists()

        # A second engine with a fresh LintCache object over the same
        # file still gets the warm fast path.
        warm = LintEngine(tmp_path, rules=rules()).run(
            cache=LintCache(cache_path)
        )
        assert warm.relinted_files == []


class TestSingleEdit:
    def test_edit_relints_file_and_dependents_only(self, tmp_path):
        write_tree(tmp_path)
        cache = LintCache(tmp_path / ".cache" / "cache.json")
        LintEngine(tmp_path, rules=rules()).run(cache=cache)

        # Edit a.py: hoist the allocation (fixes REP110).
        (tmp_path / "flow/a.py").write_text(
            textwrap.dedent(
                """
                def f(nodes, lo, hi):
                    bounds = [lo, hi]
                    for u in nodes:
                        use(u, bounds)
                """
            )
        )
        warm = LintEngine(tmp_path, rules=rules()).run(cache=cache)
        assert warm.relinted_files == ["flow/a.py", "flow/b.py"]
        assert "flow/c.py" not in warm.relinted_files
        assert warm.findings == []

        cold = LintEngine(tmp_path, rules=rules()).run()
        assert dump(warm) == dump(cold)

    def test_edit_that_adds_finding_matches_cold_run(self, tmp_path):
        write_tree(tmp_path)
        cache = LintCache(tmp_path / ".cache" / "cache.json")
        LintEngine(tmp_path, rules=rules()).run(cache=cache)

        # Introduce a REP111 in c.py (previously clean, no dependents).
        (tmp_path / "flow/c.py").write_text(
            textwrap.dedent(
                """
                def lonely(nodes, chosen):
                    order = sorted(chosen)
                    for u in nodes:
                        if u in order:
                            pass
                """
            )
        )
        warm = LintEngine(tmp_path, rules=rules()).run(cache=cache)
        assert warm.relinted_files == ["flow/c.py"]
        assert sorted(f.rule for f in warm.findings) == [
            "REP110",
            "REP111",
        ]

        cold = LintEngine(tmp_path, rules=rules()).run()
        assert [f.as_dict() for f in warm.findings] == [
            f.as_dict() for f in cold.findings
        ]

    def test_new_file_is_linted(self, tmp_path):
        write_tree(tmp_path)
        cache = LintCache(tmp_path / ".cache" / "cache.json")
        LintEngine(tmp_path, rules=rules()).run(cache=cache)

        (tmp_path / "flow/d.py").write_text(
            "def h(nodes, sel: list[int]):\n"
            "    for u in nodes:\n"
            "        if u in sel:\n"
            "            pass\n"
        )
        warm = LintEngine(tmp_path, rules=rules()).run(cache=cache)
        assert warm.relinted_files == ["flow/d.py"]
        assert sorted(f.rule for f in warm.findings) == [
            "REP110",
            "REP111",
        ]

    def test_deleted_file_drops_its_findings(self, tmp_path):
        write_tree(tmp_path)
        cache = LintCache(tmp_path / ".cache" / "cache.json")
        LintEngine(tmp_path, rules=rules()).run(cache=cache)

        (tmp_path / "flow/a.py").unlink()
        (tmp_path / "flow/b.py").write_text("def g():\n    return 1\n")
        warm = LintEngine(tmp_path, rules=rules()).run(cache=cache)
        assert warm.findings == []
        assert warm.relinted_files == ["flow/b.py"]


class TestSignatureInvalidation:
    def test_rule_set_change_falls_back_to_full_lint(self, tmp_path):
        write_tree(tmp_path)
        cache_path = tmp_path / ".cache" / "cache.json"
        LintEngine(tmp_path, rules=rules()).run(
            cache=LintCache(cache_path)
        )

        # Dropping a rule changes the run signature: the cache must not
        # serve results recorded under the wider rule set.
        warm = LintEngine(
            tmp_path, rules=[LoopInvariantAllocRule()]
        ).run(cache=LintCache(cache_path))
        assert warm.relinted_files is None

    def test_baseline_change_falls_back_to_full_lint(self, tmp_path):
        write_tree(tmp_path)
        cache_path = tmp_path / ".cache" / "cache.json"
        LintEngine(tmp_path, rules=rules()).run(
            cache=LintCache(cache_path)
        )

        baseline = {"REP110:flow/a.py:f.bounds": 1}
        warm = LintEngine(tmp_path, rules=rules()).run(
            baseline, cache=LintCache(cache_path)
        )
        assert warm.relinted_files is None
        assert warm.ok
        assert [f.baselined for f in warm.findings] == [True]

    def test_run_signature_is_order_insensitive_for_baseline(self):
        sig_a = run_signature(["REP110"], {"a": 1, "b": 2})
        sig_b = run_signature(["REP110"], {"b": 2, "a": 1})
        assert sig_a == sig_b
        assert run_signature(["REP110"], {}) != sig_a
        assert run_signature(["REP111"], {}) != run_signature(
            ["REP110"], {}
        )


class TestHelpers:
    def test_dependents_closure_is_transitive(self):
        edges = {
            "a.py": {"b.py"},
            "b.py": {"c.py"},
            "x.py": {"y.py"},
        }
        # edges map importer -> imported; b imports c, a imports b:
        closure = dependents_closure({"c.py"}, edges)
        assert closure == {"a.py", "b.py"}
        assert dependents_closure({"y.py"}, edges) == {"x.py"}
        assert dependents_closure({"a.py"}, edges) == set()

    def test_digest_source_is_content_addressed(self):
        assert digest_source("x = 1\n") == digest_source("x = 1\n")
        assert digest_source("x = 1\n") != digest_source("x = 2\n")

    def test_default_cache_path_walks_to_repo_root(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert default_cache_path(nested) == (
            tmp_path / ".lint-cache" / "cache.json"
        )

    def test_default_cache_path_without_marker_stays_local(self, tmp_path):
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert default_cache_path(nested) == (
            nested / ".lint-cache" / "cache.json"
        )
