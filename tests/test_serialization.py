"""Tests for disk round-trips of networks, instances, and solutions."""

from __future__ import annotations

import numpy as np

from repro.core.solution import MCFSSolution
from repro.io.serialization import (
    load_instance,
    load_network,
    load_solution,
    save_instance,
    save_network,
    save_solution,
)
from repro.network.graph import Network
from tests.conftest import build_random_instance, build_random_network


class TestNetworkRoundTrip:
    def test_round_trip_with_coords(self, tmp_path):
        g = build_random_network(30, seed=1)
        path = tmp_path / "net.npz"
        save_network(g, path)
        back = load_network(path)
        assert back.n_nodes == g.n_nodes
        assert sorted(back.edges()) == sorted(g.edges())
        assert np.allclose(back.coords, g.coords)
        assert back.directed == g.directed

    def test_round_trip_without_coords(self, tmp_path):
        g = Network(3, [(0, 1, 1.0), (1, 2, 2.5)])
        path = tmp_path / "net.npz"
        save_network(g, path)
        back = load_network(path)
        assert not back.has_coords
        assert sorted(back.edges()) == sorted(g.edges())

    def test_round_trip_directed(self, tmp_path):
        g = Network(3, [(0, 1, 1.0), (2, 0, 2.0)], directed=True)
        path = tmp_path / "net.npz"
        save_network(g, path)
        assert load_network(path).directed


class TestInstanceRoundTrip:
    def test_round_trip(self, tmp_path):
        inst = build_random_instance(4)
        path = tmp_path / "instance.npz"
        save_instance(inst, path)
        back = load_instance(path)
        assert back.customers == inst.customers
        assert back.facility_nodes == inst.facility_nodes
        assert back.capacities == inst.capacities
        assert back.k == inst.k
        assert back.name == inst.name
        assert sorted(back.network.edges()) == sorted(inst.network.edges())

    def test_solvable_after_reload(self, tmp_path):
        from repro import solve, validate_solution

        inst = build_random_instance(6, cap_range=(3, 6))
        path = tmp_path / "instance.npz"
        save_instance(inst, path)
        back = load_instance(path)
        sol = solve(back, method="wma")
        validate_solution(back, sol)


class TestSolutionRoundTrip:
    def test_round_trip(self, tmp_path):
        sol = MCFSSolution(
            selected=(1, 4),
            assignment=(1, 4, 4),
            objective=12.5,
            meta={"algorithm": "wma", "runtime_sec": 0.25, "iterations": 3},
        )
        path = tmp_path / "solution.json"
        save_solution(sol, path)
        back = load_solution(path)
        assert back.selected == sol.selected
        assert back.assignment == sol.assignment
        assert back.objective == sol.objective
        assert back.meta["algorithm"] == "wma"

    def test_numpy_meta_serializable(self, tmp_path):
        sol = MCFSSolution(
            selected=(0,),
            assignment=(0,),
            objective=1.0,
            meta={
                "count": np.int64(5),
                "ratio": np.float64(0.5),
                "nested": {"vals": [np.int64(1)]},
            },
        )
        path = tmp_path / "solution.json"
        save_solution(sol, path)
        back = load_solution(path)
        assert back.meta["count"] == 5
        assert back.meta["nested"]["vals"] == [1]
