"""CFG + dataflow soundness: pinned adversarial cases and hypothesis.

The invariants pinned here are what the path-sensitive rules
(REP105..REP108) lean on:

* every executable statement of a function lands in exactly one basic
  block;
* every edge connects existing blocks, and the virtual
  entry/exit/raise blocks are where they should be;
* the monotone worklist solver reaches a fixpoint, and richer start
  values can only grow the iteration count's result (monotonicity);
* the adversarial shapes -- nested ``finally`` with ``break``, ``with``
  inside ``except``, conditional ``raise`` -- produce the documented
  edges.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.graphs.cfg import CFG, build_cfg, can_raise
from repro.analysis.graphs.dataflow import (
    DataflowProblem,
    gen_kill,
    solve,
)


def cfg_of(source: str) -> CFG:
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def own_statements(func: ast.FunctionDef | ast.AsyncFunctionDef):
    """Statements belonging to ``func``'s own CFG (not nested defs)."""
    todo: list[ast.AST] = list(func.body)
    while todo:
        node = todo.pop()
        if isinstance(node, ast.stmt):
            yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        todo.extend(ast.iter_child_nodes(node))


def assert_sound(cfg: CFG) -> None:
    """The structural invariants every CFG must satisfy."""
    n = len(cfg.blocks)
    for edge in cfg.edges:
        assert 0 <= edge.src < n and 0 <= edge.dst < n
        assert edge.kind in ("next", "true", "false", "exc")
    # One block per statement, each statement anchored exactly once.
    seen: set[int] = set()
    for block in cfg.blocks:
        for stmt in block.stmts:
            assert id(stmt) not in seen, "statement in two blocks"
            seen.add(id(stmt))
            assert cfg.block_of_stmt[stmt] == block.index
    expected = {id(s) for s in own_statements(cfg.func)}
    assert seen == expected, "every executable statement gets a block"
    # Virtual blocks carry no statements; entry has no in-edges.
    for virtual in (cfg.entry, cfg.exit, cfg.raise_exit):
        assert not cfg.blocks[virtual].stmts
    assert not cfg.predecessors(cfg.entry)
    assert not cfg.successors(cfg.exit)
    assert not cfg.successors(cfg.raise_exit)


# ----------------------------------------------------------------------
# Pinned shapes
# ----------------------------------------------------------------------
class TestPinnedShapes:
    def test_straight_line(self):
        cfg = cfg_of("def f(a):\n    b = a + 1\n    return b\n")
        assert_sound(cfg)
        # a+1 can raise, so the raise exit is reachable; exit via return.
        assert cfg.exit in cfg.reachable()
        assert cfg.raise_exit in cfg.reachable()

    def test_branch_edges(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        y = 1\n"
            "    else:\n"
            "        y = 2\n"
            "    return y\n"
        )
        assert_sound(cfg)
        header = cfg.block_of_stmt[cfg.func.body[0]]
        kinds = {e.kind for e in cfg.successors(header)}
        assert {"true", "false"} <= kinds

    def test_loop_back_edge(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        use(x)\n"
            "    return None\n"
        )
        assert_sound(cfg)
        header = cfg.block_of_stmt[cfg.func.body[0]]
        assert any(
            e.dst == header for e in cfg.edges if e.src != cfg.entry
        ), "loop body loops back to the header"

    def test_exception_edge_into_handler(self):
        cfg = cfg_of(
            "def f(p):\n"
            "    try:\n"
            "        x = load(p)\n"
            "    except ValueError:\n"
            "        x = None\n"
            "    return x\n"
        )
        assert_sound(cfg)
        try_stmt = cfg.func.body[0]
        assert isinstance(try_stmt, ast.Try)
        handler_entry = cfg.handler_entry[try_stmt.handlers[0]]
        load_block = cfg.block_of_stmt[try_stmt.body[0]]
        assert any(
            e.dst == handler_entry and e.kind == "exc"
            for e in cfg.successors(load_block)
        )

    def test_nested_finally_with_break(self):
        # Adversarial pin: break inside try/finally inside a loop must
        # route through the finally body before leaving the loop.
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            if bad(x):\n"
            "                break\n"
            "        finally:\n"
            "            note(x)\n"
            "    return 1\n"
        )
        assert_sound(cfg)
        for_stmt = cfg.func.body[0]
        try_stmt = for_stmt.body[0]
        break_stmt = try_stmt.body[0].body[0]
        note_stmt = try_stmt.finalbody[0]
        break_block = cfg.block_of_stmt[break_stmt]
        note_block = cfg.block_of_stmt[note_stmt]
        # break's only normal out-edge heads into the finally, not past
        # the loop directly.
        normal = [e for e in cfg.successors(break_block) if e.kind != "exc"]
        assert len(normal) == 1
        finally_entry = normal[0].dst
        assert any(
            e.src == finally_entry and e.dst == note_block
            for e in cfg.edges
        ) or finally_entry == note_block
        # and the finally reaches the statement after the loop.
        return_block = cfg.block_of_stmt[cfg.func.body[1]]
        reach = {note_block}
        frontier = [note_block]
        while frontier:
            for e in cfg.successors(frontier.pop()):
                if e.dst not in reach:
                    reach.add(e.dst)
                    frontier.append(e.dst)
        assert return_block in reach

    def test_with_inside_except(self):
        # Adversarial pin: a with-statement in a handler body keeps the
        # one-block-per-statement invariant and stays connected.
        cfg = cfg_of(
            "def f(p):\n"
            "    try:\n"
            "        risky(p)\n"
            "    except Exception:\n"
            "        with open('log') as fh:\n"
            "            fh.write('x')\n"
            "    return 0\n"
        )
        assert_sound(cfg)
        try_stmt = cfg.func.body[0]
        with_stmt = try_stmt.handlers[0].body[0]
        write_stmt = with_stmt.body[0]
        assert cfg.block_of_stmt[with_stmt] != cfg.block_of_stmt[write_stmt]
        assert cfg.block_of_stmt[write_stmt] in cfg.reachable()

    def test_conditional_raise(self):
        # Adversarial pin: a raise on one branch only -- the other
        # branch must still reach exit, the raising one raise_exit.
        cfg = cfg_of(
            "def f(x):\n"
            "    if x < 0:\n"
            "        raise ValueError(x)\n"
            "    return x\n"
        )
        assert_sound(cfg)
        raise_block = cfg.block_of_stmt[cfg.func.body[0].body[0]]
        assert all(e.kind == "exc" for e in cfg.successors(raise_block))
        assert any(
            e.dst == cfg.raise_exit for e in cfg.successors(raise_block)
        )
        assert cfg.exit in cfg.reachable()

    def test_try_header_does_not_raise(self):
        assert not can_raise(ast.parse("try:\n    pass\nfinally:\n    pass").body[0])
        assert not can_raise(ast.parse("pass").body[0])
        assert can_raise(ast.parse("raise ValueError()").body[0])
        assert can_raise(ast.parse("x = f()").body[0])
        assert not can_raise(ast.parse("x = 1").body[0])

    def test_return_inside_finally_swallows_nothing_extra(self):
        # A return threaded through two nested finallies runs both.
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        try:\n"
            "            return work()\n"
            "        finally:\n"
            "            inner()\n"
            "    finally:\n"
            "        outer()\n"
        )
        assert_sound(cfg)
        inner_block = cfg.block_of_stmt[cfg.func.body[0].body[0].finalbody[0]]
        outer_block = cfg.block_of_stmt[cfg.func.body[0].finalbody[0]]
        # inner finally forwards (possibly via its merge fan-out) to the
        # outer finally's blocks before exit.
        reach = {inner_block}
        frontier = [inner_block]
        while frontier:
            for e in cfg.successors(frontier.pop()):
                if e.dst not in reach:
                    reach.add(e.dst)
                    frontier.append(e.dst)
        assert outer_block in reach
        assert cfg.exit in reach


# ----------------------------------------------------------------------
# Dataflow solver
# ----------------------------------------------------------------------
class TestDataflow:
    def test_may_vs_must_on_branch(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        mark()\n"
            "    return x\n"
        )
        mark_block = cfg.block_of_stmt[cfg.func.body[0].body[0]]
        fact = frozenset({"marked"})
        gen = {mark_block: fact}
        may = solve(cfg, DataflowProblem(flow=gen_kill(gen, {})))
        must = solve(
            cfg,
            DataflowProblem(
                flow=gen_kill(gen, {}), may=False, universe=fact
            ),
        )
        assert may.value_into(cfg.exit) == fact, "some path marks"
        assert must.value_into(cfg.exit) == frozenset(), "not all paths do"

    def test_exception_edge_skips_gen(self):
        cfg = cfg_of("def f():\n    x = acquire()\n    return x\n")
        acq_block = cfg.block_of_stmt[cfg.func.body[0]]
        fact = frozenset({"res"})
        res = solve(
            cfg, DataflowProblem(flow=gen_kill({acq_block: fact}, {}))
        )
        # The constructor raising means nothing was acquired: the exc
        # edge out of the acquisition block must not carry the fact.
        # (``return x`` itself cannot raise, so raise_exit's only
        # in-flow is that acquisition failure.)
        assert res.value_into(cfg.raise_exit) == frozenset()

    def test_backward_liveness_style(self):
        cfg = cfg_of(
            "def f(a):\n"
            "    b = a + 1\n"
            "    return b\n"
        )
        ret_block = cfg.block_of_stmt[cfg.func.body[1]]
        fact = frozenset({"b"})
        res = solve(
            cfg,
            DataflowProblem(
                flow=gen_kill({ret_block: fact}, {}),
                direction="backward",
            ),
        )
        assert fact <= res.value_into(cfg.entry)

    def test_fixpoint_stable(self):
        # Re-running the solver on its own fixpoint changes nothing.
        cfg = cfg_of(
            "def f(xs):\n"
            "    t = 0\n"
            "    for x in xs:\n"
            "        t = t + x\n"
            "    return t\n"
        )
        gen = {
            cfg.block_of_stmt[cfg.func.body[0]]: frozenset({"t"})
        }
        first = solve(cfg, DataflowProblem(flow=gen_kill(gen, {})))
        second = solve(cfg, DataflowProblem(flow=gen_kill(gen, {})))
        assert first.block_in == second.block_in
        assert first.iterations == second.iterations


# ----------------------------------------------------------------------
# Hypothesis: random small programs
# ----------------------------------------------------------------------
_names = st.sampled_from(["a", "b", "c"])


@st.composite
def _simple_stmt(draw) -> str:
    kind = draw(st.sampled_from(["assign", "call", "aug", "pass"]))
    n = draw(_names)
    if kind == "assign":
        return f"{n} = {draw(st.integers(0, 9))}"
    if kind == "call":
        return f"use({n})"
    if kind == "aug":
        return f"{n} += 1"
    return "pass"


@st.composite
def _block(draw, depth: int) -> list[str]:
    stmts: list[str] = []
    n_stmts = draw(st.integers(1, 3))
    for _ in range(n_stmts):
        stmts.extend(draw(_stmt(depth)))
    return stmts


@st.composite
def _stmt(draw, depth: int) -> list[str]:
    choices = ["simple", "return", "raise"]
    if depth > 0:
        choices += ["if", "while", "for", "try", "with"]
    kind = draw(st.sampled_from(choices))
    pad = "    "
    if kind == "simple":
        return [draw(_simple_stmt())]
    if kind == "return":
        return [f"return {draw(_names)}"]
    if kind == "raise":
        return ["raise ValueError()"]
    if kind == "if":
        body = draw(_block(depth - 1))
        lines = [f"if {draw(_names)}:"] + [pad + s for s in body]
        if draw(st.booleans()):
            orelse = draw(_block(depth - 1))
            lines += ["else:"] + [pad + s for s in orelse]
        return lines
    if kind == "while":
        body = draw(_block(depth - 1))
        tail = draw(st.sampled_from(["", "break", "continue"]))
        lines = [f"while {draw(_names)}:"] + [pad + s for s in body]
        if tail:
            lines.append(pad + tail)
        return lines
    if kind == "for":
        body = draw(_block(depth - 1))
        return [f"for {draw(_names)} in items:"] + [pad + s for s in body]
    if kind == "with":
        body = draw(_block(depth - 1))
        return ["with ctx() as a:"] + [pad + s for s in body]
    # try
    body = draw(_block(depth - 1))
    lines = ["try:"] + [pad + s for s in body]
    shape = draw(st.sampled_from(["except", "finally", "both"]))
    if shape in ("except", "both"):
        handler = draw(_block(depth - 1))
        lines += ["except Exception:"] + [pad + s for s in handler]
    if shape in ("finally", "both"):
        final = draw(_block(depth - 1))
        lines += ["finally:"] + [pad + s for s in final]
    return lines


@st.composite
def programs(draw) -> str:
    body = draw(_block(depth=2))
    return "def f(a, b, c, items):\n" + "\n".join(
        "    " + line for line in body
    )


@given(programs())
@settings(max_examples=120, deadline=None)
def test_cfg_soundness_on_random_programs(source):
    cfg = cfg_of(source)
    assert_sound(cfg)


@given(programs(), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_dataflow_fixpoint_and_monotone_start(source, extra):
    cfg = cfg_of(source)
    # Gen a fact at every third block, no kills: the solution at exit
    # must be monotone in the boundary value.
    gen = {
        b.index: frozenset({f"g{b.index}"})
        for b in cfg.blocks
        if b.index % 3 == 0
    }
    small = solve(cfg, DataflowProblem(flow=gen_kill(gen, {})))
    seed = frozenset(f"seed{i}" for i in range(extra))
    big = solve(
        cfg,
        DataflowProblem(flow=gen_kill(gen, {}), boundary=seed),
    )
    assert small.iterations >= len(
        [b for b in cfg.blocks if b.index in small.block_in]
    ) * 0 + 1
    for block, value in small.block_in.items():
        assert value <= big.block_in.get(block, frozenset()) | value
        # monotone: a bigger start can only produce a superset.
        if block in big.block_in:
            assert value - seed <= big.block_in[block]
    # Fixpoint: solving twice is identical.
    again = solve(cfg, DataflowProblem(flow=gen_kill(gen, {})))
    assert again.block_in == small.block_in
    assert again.iterations == small.iterations
