"""Empirical checks of the paper's Section VI complexity claims.

Theorem 2 bounds WMA far above what happens in practice ("WMA performs
far below this worst-case complexity thanks to its pruning ability").
These tests confirm the *structural* bounds the analysis relies on and
the practical gap, using the solver's built-in counters.
"""

from __future__ import annotations

from repro.core.wma import WMASolver
from repro.datagen.instances import clustered_instance, uniform_instance
from repro.flow.sspa import assign_all
from repro.obs import metrics


class TestCounters:
    def test_edges_bounded_by_complete_bipartite_graph(self):
        for seed in range(4):
            inst = uniform_instance(256, seed=seed)
            sol = WMASolver(inst).solve()
            assert sol.meta["edges_materialized"] <= inst.m * inst.l

    def test_iterations_bounded_by_m_times_l(self):
        for seed in range(4):
            inst = clustered_instance(256, seed=seed)
            sol = WMASolver(inst).solve()
            assert sol.meta["iterations"] <= inst.m * inst.l + 2

    def test_pruning_gap_is_large(self):
        """The practical edge count is a tiny fraction of the bound."""
        inst = uniform_instance(1024, seed=3)
        sol = WMASolver(inst).solve()
        fraction = sol.meta["edges_materialized"] / (inst.m * inst.l)
        assert fraction < 0.05

    def test_dijkstra_runs_scale_with_assignments_not_bound(self):
        """Worst case allows m*l Dijkstras per FindPair; practice is
        a small constant per assignment."""
        inst = uniform_instance(512, seed=5)
        sol = WMASolver(inst).solve()
        # Total G_b Dijkstra runs per materialized edge stays small.
        ratio = sol.meta["dijkstra_runs"] / max(
            1, sol.meta["edges_materialized"]
        )
        assert ratio < 10.0

    def test_counters_monotone_in_trace(self):
        inst = clustered_instance(256, seed=1)
        solver = WMASolver(inst)
        solver.solve()
        edges = solver.trace.edges_materialized
        assert edges == sorted(edges)


class TestUnifiedCounters:
    """The `repro.obs` counters must agree with the legacy ad-hoc ones
    (`BipartiteState.edges_materialized`, `BipartiteState.dijkstra_runs`,
    `MCFSSolution.meta`) before the legacy ones can be removed."""

    def test_assign_all_unified_matches_state_counters(self):
        inst = uniform_instance(256, seed=2)
        reg = metrics.Registry()
        with metrics.use(reg):
            result = assign_all(
                inst.network,
                inst.customers,
                inst.facility_nodes,
                inst.capacities,
            )
        flat = reg.as_dict()
        state = result.state
        assert flat["incremental.edges_materialized"] == (
            state.edges_materialized
        )
        assert flat["sspa.dijkstra_runs"] == state.dijkstra_runs
        # One augmentation per customer: assign_all's invariant.
        assert flat["sspa.augmentations"] == state.m

    def test_wma_unified_matches_solution_meta(self):
        inst = uniform_instance(256, seed=0)
        reg = metrics.Registry()
        with metrics.use(reg):
            sol = WMASolver(inst).solve()
        flat = reg.as_dict()
        assert flat["wma.iterations"] == sol.meta["iterations"]
        # The meta counters cover the main-phase BipartiteState only; the
        # unified ones also include the final-assignment state, so they
        # dominate but never undershoot.
        assert (
            flat["incremental.edges_materialized"]
            >= sol.meta["edges_materialized"]
        )
        assert flat["sspa.dijkstra_runs"] >= sol.meta["dijkstra_runs"]
        # Peak G_b size is exactly the main phase's final edge count.
        assert flat["bipartite.peak_edges"] >= sol.meta["edges_materialized"]
