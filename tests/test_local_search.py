"""Tests for the local-search refinement extension."""

from __future__ import annotations

import itertools

import pytest

from repro import solve, validate_solution
from repro.core.instance import MCFSInstance
from repro.core.local_search import RefinementReport, refine_solution, solve_wma_refined
from repro.core.solution import MCFSSolution
from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from tests.conftest import build_line_network, build_random_instance


def brute_force_optimum(instance: MCFSInstance) -> float | None:
    best = None
    for combo in itertools.combinations(range(instance.l), instance.k):
        nodes = [instance.facility_nodes[j] for j in combo]
        caps = [instance.capacities[j] for j in combo]
        try:
            result = assign_all(
                instance.network, instance.customers, nodes, caps
            )
        except MatchingError:
            continue
        if best is None or result.cost < best:
            best = result.cost
    return best


class TestRefinement:
    def test_never_worse(self):
        for seed in range(10):
            inst = build_random_instance(seed, cap_range=(3, 6))
            base = solve(inst, method="wma")
            refined, report = refine_solution(inst, base)
            validate_solution(inst, refined)
            assert refined.objective <= base.objective + 1e-9
            assert report.final_objective == pytest.approx(refined.objective)

    def test_fixes_bad_starting_point(self):
        # Random selection is usually bad; refinement should close much
        # of the gap to optimal.
        improved = 0
        for seed in range(6):
            inst = build_random_instance(seed, l=10, k=3, cap_range=(4, 7))
            base = solve(inst, method="random", seed=seed)
            refined, report = refine_solution(inst, base, max_rounds=10)
            validate_solution(inst, refined)
            if refined.objective < base.objective - 1e-9:
                improved += 1
        assert improved >= 3

    def test_reaches_optimum_on_crafted_instance(self):
        # One obviously misplaced facility; the medoid move must find
        # the colocated candidate.
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(1, 2, 8),
            facility_nodes=(0, 2, 5, 8),
            capacities=(3, 3, 3, 3),
            k=2,
        )
        bad = MCFSSolution(
            selected=(0, 2),  # nodes 0 and 5
            assignment=(0, 0, 2),
            objective=1.0 + 2.0 + 3.0,
        )
        validate_solution(inst, bad)
        refined, report = refine_solution(inst, bad, max_rounds=10)
        validate_solution(inst, refined)
        assert refined.objective == pytest.approx(brute_force_optimum(inst))
        assert report.moves_accepted >= 1
        assert report.improvement > 0

    def test_capacity_respected_during_moves(self):
        # The tempting replacement lacks capacity and must be skipped.
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(1, 2, 3),
            facility_nodes=(0, 2, 9),
            capacities=(3, 1, 3),
            k=1,
        )
        base = MCFSSolution(
            selected=(0,), assignment=(0, 0, 0), objective=1 + 2 + 3
        )
        refined, _ = refine_solution(inst, base, max_rounds=5)
        validate_solution(inst, refined)
        # Facility 1 (node 2, capacity 1) cannot host all three.
        assert refined.selected == (0,)

    def test_report_fields(self):
        inst = build_random_instance(1, cap_range=(3, 6))
        base = solve(inst, method="wma")
        _, report = refine_solution(inst, base)
        assert isinstance(report, RefinementReport)
        assert report.rounds >= 1
        assert 0.0 <= report.improvement <= 1.0

    def test_meta_tagged(self):
        inst = build_random_instance(2, cap_range=(3, 6))
        base = solve(inst, method="hilbert")
        refined, _ = refine_solution(inst, base)
        assert refined.meta["algorithm"] == "hilbert+ls"
        assert "ls_moves" in refined.meta


class TestSolveWmaRefined:
    def test_valid_and_no_worse_than_wma(self):
        for seed in range(5):
            inst = build_random_instance(seed, cap_range=(3, 6))
            wma = solve(inst, method="wma")
            refined = solve_wma_refined(inst)
            validate_solution(inst, refined)
            assert refined.objective <= wma.objective + 1e-9
            assert refined.meta["algorithm"] == "wma+ls"
