"""End-to-end integration scenarios across the whole stack.

Each test tells one realistic story through multiple subsystems --
generation, solving, analysis, persistence -- the way a downstream user
would chain them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import solve, validate_solution
from repro.bench.solution_stats import compare_solutions, solution_stats
from repro.core import DynamicAllocator, refine_solution
from repro.core.throughput import assign_with_throughput
from repro.datagen import (
    city_instance,
    generate_workload,
    grid_city,
    occupancy_customer_distribution,
    operational_hours_capacities,
    radial_city,
    synth_occupancies,
    weighted_customers,
)
from repro.errors import MatchingError
from repro.io import export_scenario, load_solution, save_solution
from repro.io.serialization import load_instance, save_instance
from repro.network.subgraph import giant_component_instance


class TestFullCoworkingPipeline:
    """Generate -> solve -> analyze -> persist -> reload -> refine."""

    def test_pipeline(self, tmp_path):
        network = grid_city(12, 12, seed=3)
        rng = np.random.default_rng(3)
        venues = sorted(
            int(v) for v in rng.choice(network.n_nodes, size=60, replace=False)
        )
        hours = operational_hours_capacities(60, rng)
        occupancy = synth_occupancies(60, rng)
        weights = occupancy_customer_distribution(network, venues, occupancy)
        coworkers = weighted_customers(network, 50, weights, rng)

        instance = city_instance(
            network,
            m=50,
            k=12,
            capacity=hours,
            customer_nodes=coworkers,
            facility_nodes=venues,
            name="pipeline",
        )

        # Solve with two methods, compare, pick the better.
        solutions = [solve(instance, method=m) for m in ("wma", "hilbert")]
        for sol in solutions:
            validate_solution(instance, sol)
        rows = compare_solutions(instance, solutions)
        assert rows[0]["vs_best"] >= 1.0

        best = min(solutions, key=lambda s: s.objective)
        stats = solution_stats(instance, best)
        assert stats.mean_utilization <= 1.0

        # Persist and reload both artifacts; re-validate after reload.
        inst_path = tmp_path / "instance.npz"
        sol_path = tmp_path / "solution.json"
        save_instance(instance, inst_path)
        save_solution(best, sol_path)
        reloaded_inst = load_instance(inst_path)
        reloaded_sol = load_solution(sol_path)
        validate_solution(reloaded_inst, reloaded_sol)

        # Refine the reloaded solution; it may only improve.
        refined, report = refine_solution(reloaded_inst, reloaded_sol)
        validate_solution(reloaded_inst, refined)
        assert refined.objective <= reloaded_sol.objective + 1e-9

        # Export the map bundle.
        export_scenario(reloaded_inst, refined, tmp_path / "map.json")
        assert (tmp_path / "map.json").stat().st_size > 0


class TestFullDynamicPipeline:
    """Select once, then serve a day-long temporal workload."""

    def test_pipeline(self):
        network = radial_city(8, 24, seed=5)
        instance = city_instance(
            network, m=30, k=10, capacity=8, seed=5, name="dyn"
        )
        selection = solve(instance, method="wma").selected

        allocator = DynamicAllocator(instance, selection)
        rng = np.random.default_rng(5)
        events = generate_workload(
            network, rng, hours=12.0, base_rate=2.0, peak_rate=6.0
        )
        handles: dict[int, int] = {}
        rejected = 0
        for pos, event in enumerate(events):
            if event.kind == "arrival":
                try:
                    handles[pos] = allocator.add_customer(event.node)
                except MatchingError:
                    rejected += 1
            elif event.ref in handles:
                allocator.remove_customer(handles.pop(event.ref))

        # System ends consistent: loads, costs, capacity all coherent.
        loads = allocator.load_per_facility()
        assert sum(loads.values()) == allocator.n_active
        assert allocator.residual_capacity() >= 0
        assert allocator.cost >= 0.0
        # Every processed event is on the audit trail.
        assert len(allocator.events) >= len(handles)


class TestFragmentedCityWorkflow:
    """Disconnected network: solve globally, then study the core."""

    def test_pipeline(self):
        network = grid_city(10, 10, seed=7, drop_rate=0.35)  # fragments
        instance = city_instance(
            network, m=25, k=8, capacity=8, seed=7, name="frag"
        )
        sol = solve(instance, method="wma")
        validate_solution(instance, sol)

        core = giant_component_instance(instance)
        assert core.network.stats().n_components == 1
        core_sol = solve(core, method="wma")
        validate_solution(core, core_sol)
        # The core sub-problem can be no more expensive per customer
        # than... no general relation; just both must be feasible and
        # the core strictly smaller.
        assert core.m <= instance.m


class TestThroughputOnSelection:
    def test_every_solver_selection_routable_unconstrained(self):
        network = grid_city(8, 8, seed=9)
        instance = city_instance(
            network, m=16, k=5, capacity=5, seed=9, name="route"
        )
        for method in ("wma", "hilbert", "wma-naive"):
            sol = solve(instance, method=method)
            routed = assign_with_throughput(
                instance, sol.selected, float("inf")
            )
            # Unconstrained routing equals the assignment optimum, which
            # is at most the solver's (already optimal-assignment) cost.
            assert routed.cost == pytest.approx(sol.objective, rel=1e-9)
