"""Fixture tests for the path-sensitive tier (REP105..REP108).

Each rule gets positive fixtures (the defect fires) and negative
fixtures (the remediated shape is clean), plus the justification-only
suppression behaviour shared by the whole tier.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import LintEngine
from repro.analysis.pathrules import (
    BudgetExceptionSafetyRule,
    MustReleaseResourceRule,
    ServeStateMachineRule,
    SetOrderDeterminismRule,
)


def run_rule(tmp_path: Path, rule, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return LintEngine(tmp_path, rules=[rule]).run()


def rule_ids(result):
    return [f.rule for f in result.findings]


class TestRep105MustRelease:
    def test_conditional_close_leaks_on_else_path(self, tmp_path):
        result = run_rule(
            tmp_path,
            MustReleaseResourceRule(),
            {
                "flow/a.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def f(name, keep):
                        shm = SharedMemory(name=name)
                        if keep:
                            shm.close()
                        return 1
                    """
            },
        )
        assert rule_ids(result) == ["REP105"]
        assert "shm" in result.findings[0].message

    def test_missing_release_on_exception_path(self, tmp_path):
        # Released on the straight-line path, but read() raising skips
        # the close: the exc edge carries the live resource to
        # raise_exit.
        result = run_rule(
            tmp_path,
            MustReleaseResourceRule(),
            {
                "flow/a.py": """
                    def f(path):
                        fh = open(path)
                        data = fh.read()
                        fh.close()
                        return data
                    """
            },
        )
        assert rule_ids(result) == ["REP105"]
        assert "exception path" in result.findings[0].message

    def test_try_finally_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            MustReleaseResourceRule(),
            {
                "flow/a.py": """
                    def f(path):
                        fh = open(path)
                        try:
                            return work(fh)
                        finally:
                            fh.close()
                    """
            },
        )
        assert result.findings == []

    def test_escaping_resource_is_not_flagged(self, tmp_path):
        # Returning the handle transfers ownership to the caller.
        result = run_rule(
            tmp_path,
            MustReleaseResourceRule(),
            {
                "flow/a.py": """
                    def f(path):
                        fh = open(path)
                        return fh
                    """
            },
        )
        assert result.findings == []

    def test_pool_terminate_in_finally_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            MustReleaseResourceRule(),
            {
                "flow/a.py": """
                    from multiprocessing import Pool

                    def f(n):
                        pool = Pool(n)
                        try:
                            return pool.map(str, range(n))
                        finally:
                            pool.terminate()
                            pool.join()
                    """
            },
        )
        assert result.findings == []


class TestRep106BudgetSafety:
    def test_broad_handler_over_checkpoint_fires(self, tmp_path):
        result = run_rule(
            tmp_path,
            BudgetExceptionSafetyRule(),
            {
                "flow/a.py": """
                    def f(x):
                        try:
                            _budget_checkpoint()
                            return work(x)
                        except Exception:
                            return None
                    """
            },
        )
        assert rule_ids(result) == ["REP106"]
        assert "swallow" in result.findings[0].message

    def test_injected_callable_is_budget_opaque(self, tmp_path):
        # Calling a bare parameter (an injected solver) may checkpoint.
        result = run_rule(
            tmp_path,
            BudgetExceptionSafetyRule(),
            {
                "flow/a.py": """
                    def f(solver, instance):
                        try:
                            return solver(instance)
                        except Exception:
                            return None
                    """
            },
        )
        assert rule_ids(result) == ["REP106"]

    def test_prior_budget_handler_shields(self, tmp_path):
        result = run_rule(
            tmp_path,
            BudgetExceptionSafetyRule(),
            {
                "flow/a.py": """
                    def f(x):
                        try:
                            _budget_checkpoint()
                            return work(x)
                        except BudgetExceeded:
                            raise
                        except Exception:
                            return None
                    """
            },
        )
        assert result.findings == []

    def test_rereaising_broad_handler_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            BudgetExceptionSafetyRule(),
            {
                "flow/a.py": """
                    def f(x):
                        try:
                            _budget_checkpoint()
                            return work(x)
                        except Exception:
                            log_failure(x)
                            raise
                    """
            },
        )
        assert result.findings == []

    def test_broad_handler_without_budget_region_is_clean(self, tmp_path):
        # No checkpoint, no BudgetExceeded, no injected-callable call:
        # swallowing here cannot lose a deadline.
        result = run_rule(
            tmp_path,
            BudgetExceptionSafetyRule(),
            {
                "flow/a.py": """
                    def f(path):
                        try:
                            return parse(path)
                        except Exception:
                            return None
                    """
            },
        )
        assert result.findings == []

    def test_silent_salvage_fires(self, tmp_path):
        result = run_rule(
            tmp_path,
            BudgetExceptionSafetyRule(),
            {
                "flow/a.py": """
                    def f(x, cache):
                        try:
                            return work(x)
                        except BudgetExceeded:
                            return cache.get(x)
                    """
            },
        )
        assert rule_ids(result) == ["REP106"]
        assert "degrad" in result.findings[0].message

    def test_marked_salvage_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            BudgetExceptionSafetyRule(),
            {
                "flow/a.py": """
                    def f(x, meta):
                        try:
                            return work(x)
                        except BudgetExceeded:
                            meta["degraded"] = True
                            partial = best_so_far()
                        return partial
                    """
            },
        )
        assert result.findings == []


class TestRep107SetOrder:
    def test_set_iteration_into_append_fires(self, tmp_path):
        result = run_rule(
            tmp_path,
            SetOrderDeterminismRule(),
            {
                "flow/a.py": """
                    def f(nodes: set[int]) -> list[int]:
                        out = []
                        for n in nodes:
                            out.append(n)
                        return out
                    """
            },
        )
        assert rule_ids(result) == ["REP107"]

    def test_inferred_set_literal_fires(self, tmp_path):
        # No annotation: the set-typedness is inferred from the
        # assignment.
        result = run_rule(
            tmp_path,
            SetOrderDeterminismRule(),
            {
                "flow/a.py": """
                    def f(xs):
                        seen = {x for x in xs}
                        return list(seen)
                    """
            },
        )
        assert rule_ids(result) == ["REP107"]

    def test_sorted_iteration_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            SetOrderDeterminismRule(),
            {
                "flow/a.py": """
                    def f(nodes: set[int]) -> list[int]:
                        out = []
                        for n in sorted(nodes):
                            out.append(n)
                        return out
                    """
            },
        )
        assert result.findings == []

    def test_order_free_consumption_is_clean(self, tmp_path):
        # sum()/len()/min() don't observe iteration order, and
        # iterating into an accumulator that is itself a set is fine.
        result = run_rule(
            tmp_path,
            SetOrderDeterminismRule(),
            {
                "flow/a.py": """
                    def f(nodes: set[int]) -> int:
                        total = sum(nodes)
                        low = min(nodes)
                        copies = set(nodes)
                        return total + low + len(copies)
                    """
            },
        )
        assert result.findings == []


class TestRep108ServeStateMachine:
    def test_missing_staleness_keyword_fires(self, tmp_path):
        result = run_rule(
            tmp_path,
            ServeStateMachineRule(),
            {
                "serve/engine.py": """
                    def answer(value):
                        return ServeResult(value=value)
                    """
            },
        )
        assert rule_ids(result) == ["REP108"]
        assert "staleness" in result.findings[0].message

    def test_outside_serve_prefix_is_ignored(self, tmp_path):
        result = run_rule(
            tmp_path,
            ServeStateMachineRule(),
            {
                "flow/engine.py": """
                    def answer(value):
                        return ServeResult(value=value)
                    """
            },
        )
        assert result.findings == []

    def test_path_missing_construction_fires(self, tmp_path):
        # The fallthrough path returns a bare value: must-analysis at
        # exit lacks the "constructed" fact.
        result = run_rule(
            tmp_path,
            ServeStateMachineRule(),
            {
                "serve/engine.py": """
                    def answer(x, cached) -> ServeResult:
                        if x in cached:
                            return ServeResult(value=cached[x], staleness=0)
                        return None
                    """
            },
        )
        assert any(
            "some path" in f.message or "every path" in f.message
            for f in result.findings
        )

    def test_all_paths_construct_is_clean(self, tmp_path):
        result = run_rule(
            tmp_path,
            ServeStateMachineRule(),
            {
                "serve/engine.py": """
                    def answer(x, cached) -> ServeResult:
                        if x in cached:
                            return ServeResult(value=cached[x], staleness=0)
                        return ServeResult(value=None, staleness=1)
                    """
            },
        )
        assert result.findings == []

    def test_delegating_return_is_clean(self, tmp_path):
        # Returning another call's result delegates construction.
        result = run_rule(
            tmp_path,
            ServeStateMachineRule(),
            {
                "serve/engine.py": """
                    def answer(x) -> ServeResult:
                        return slow_path(x)
                    """
            },
        )
        assert result.findings == []

    def test_object_setattr_fires(self, tmp_path):
        result = run_rule(
            tmp_path,
            ServeStateMachineRule(),
            {
                "serve/engine.py": """
                    def patch(record, when):
                        object.__setattr__(record, "at", when)
                    """
            },
        )
        assert rule_ids(result) == ["REP108"]

    def test_frozen_mutation_record_assignment_fires(self, tmp_path):
        result = run_rule(
            tmp_path,
            ServeStateMachineRule(),
            {
                "serve/engine.py": """
                    def reprice(m: CustomerArrive):
                        m.node = 3
                        return m
                    """
            },
        )
        assert rule_ids(result) == ["REP108"]
        assert "frozen" in result.findings[0].message


class TestJustifiedSuppression:
    LEAKY = """
        def f(name, keep):
            shm = SharedMemory(name=name){directive}
            if keep:
                shm.close()
            return 1
        """

    def test_justified_directive_suppresses(self, tmp_path):
        src = self.LEAKY.format(
            directive="  # reprolint: disable=REP105 -- fixture leak"
        )
        result = run_rule(
            tmp_path, MustReleaseResourceRule(), {"flow/a.py": src}
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_unjustified_directive_is_ignored(self, tmp_path):
        # REP105 is justification-only: a bare disable does nothing.
        src = self.LEAKY.format(
            directive="  # reprolint: disable=REP105"
        )
        result = run_rule(
            tmp_path, MustReleaseResourceRule(), {"flow/a.py": src}
        )
        assert rule_ids(result) == ["REP105"]
