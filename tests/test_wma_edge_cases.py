"""Edge-case tests for WMA and the solver stack."""

from __future__ import annotations

import pytest

from repro import solve, validate_solution
from repro.core.instance import MCFSInstance
from repro.core.wma import WMASolver
from tests.conftest import (
    build_grid_network,
    build_line_network,
    build_two_component_network,
)

HEURISTICS = ("wma", "wma-uf", "wma-naive", "hilbert", "random", "wma-ls")


class TestSingleCustomer:
    @pytest.mark.parametrize("method", HEURISTICS + ("exact",))
    def test_one_customer(self, method):
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(3,),
            facility_nodes=(0, 5),
            capacities=(1, 1),
            k=1,
        )
        sol = solve(inst, method=method)
        validate_solution(inst, sol)
        assert sol.objective == pytest.approx(2.0)  # nearest is node 5


class TestColocated:
    def test_every_customer_on_a_facility(self):
        inst = MCFSInstance(
            network=build_line_network(8),
            customers=(1, 4, 6),
            facility_nodes=(1, 4, 6),
            capacities=(1, 1, 1),
            k=3,
        )
        sol = solve(inst, method="wma")
        validate_solution(inst, sol)
        assert sol.objective == pytest.approx(0.0)

    def test_zero_objective_exact_agrees(self):
        inst = MCFSInstance(
            network=build_line_network(8),
            customers=(1, 4),
            facility_nodes=(1, 4, 7),
            capacities=(1, 1, 1),
            k=2,
        )
        assert solve(inst, method="exact").objective == pytest.approx(0.0)
        assert solve(inst, method="wma").objective == pytest.approx(0.0)


class TestTightCapacity:
    def test_exact_fit_occupancy_one(self):
        # Total capacity exactly equals the customer count.
        inst = MCFSInstance(
            network=build_grid_network(4, 4),
            customers=(0, 1, 2, 3, 12, 13, 14, 15),
            facility_nodes=(5, 10),
            capacities=(4, 4),
            k=2,
        )
        for method in HEURISTICS:
            sol = solve(inst, method=method)
            validate_solution(inst, sol)
            loads = sol.load_per_facility()
            assert all(load == 4 for load in loads.values())

    def test_capacity_one_facilities(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 3, 7),
            facility_nodes=(1, 4, 8, 9),
            capacities=(1, 1, 1, 1),
            k=3,
        )
        for method in HEURISTICS:
            sol = solve(inst, method=method)
            validate_solution(inst, sol)
            assert len(set(sol.assignment)) == 3


class TestBudgetExtremes:
    def test_k_equals_l(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(0, 5, 9),
            facility_nodes=(1, 4, 8),
            capacities=(2, 2, 2),
            k=3,
        )
        for method in HEURISTICS:
            sol = solve(inst, method=method)
            validate_solution(inst, sol)

    def test_k_one_single_hub(self):
        inst = MCFSInstance(
            network=build_grid_network(3, 3),
            # The center customer breaks the corner-vs-center tie.
            customers=(0, 2, 4, 6, 8),
            facility_nodes=(0, 4, 8),
            capacities=(9, 9, 9),
            k=1,
        )
        sol = solve(inst, method="wma")
        validate_solution(inst, sol)
        exact = solve(inst, method="exact")
        # The center node 4 is the unique 1-median for the exact solver.
        assert exact.selected == (1,)
        assert exact.objective == pytest.approx(8.0)
        # WMA's coverage-driven selection is distance-blind among full
        # ties, so any single candidate is a legitimate outcome; the
        # local-search refinement recovers the optimum.
        refined = solve(inst, method="wma-ls")
        assert refined.objective == pytest.approx(8.0)


class TestDemandCapping:
    def test_demands_freeze_in_small_component(self):
        # Component B has one candidate; its customer's demand cannot
        # grow past 1 even while A's customers explore.
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 3),
            facility_nodes=(0, 1, 2, 4),
            capacities=(1, 1, 1, 2),
            k=3,
        )
        solver = WMASolver(inst)
        sol = solver.solve()
        validate_solution(inst, sol)
        # Iterations stay bounded despite the frozen customer.
        assert sol.meta["iterations"] <= inst.m * inst.l + 2


class TestManyCustomersPerNode:
    def test_heavy_colocation(self):
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(2,) * 7,
            facility_nodes=(0, 2, 5),
            capacities=(3, 3, 3),
            k=3,
        )
        sol = solve(inst, method="wma")
        validate_solution(inst, sol)
        exact = solve(inst, method="exact")
        assert sol.objective == pytest.approx(exact.objective)

    def test_colocation_shares_one_stream(self):
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(2,) * 5,
            facility_nodes=(0, 2, 5),
            capacities=(2, 2, 2),
            k=3,
        )
        solver = WMASolver(inst)
        sol = solver.solve()
        validate_solution(inst, sol)


class TestParallelEdges:
    def test_cheapest_parallel_edge_wins(self):
        from repro.network.graph import Network

        g = Network(3, [(0, 1, 5.0), (0, 1, 1.0), (1, 2, 1.0)])
        inst = MCFSInstance(
            network=g,
            customers=(0,),
            facility_nodes=(2,),
            capacities=(1,),
            k=1,
        )
        sol = solve(inst, method="wma")
        assert sol.objective == pytest.approx(2.0)
