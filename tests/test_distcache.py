"""Distance-cache correctness: cached runs must change nothing but speed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import run_solvers
from repro.network import distcache
from repro.network.dijkstra import distance_matrix
from repro.network.distcache import DistanceCache
from repro.obs import metrics
from tests.conftest import (
    build_random_instance,
    build_random_network,
    build_two_component_network,
)


class TestDistanceCache:
    def test_cached_matrix_identical(self):
        network = build_random_network(50, seed=0)
        sources, targets = [0, 7, 13], [1, 2, 30, 49]
        plain = distance_matrix(network, sources, targets)
        cache = DistanceCache()
        cached_cold = distance_matrix(
            network, sources, targets, cache=cache
        )
        cached_warm = distance_matrix(
            network, sources, targets, cache=cache
        )
        assert np.array_equal(plain, cached_cold)
        assert np.array_equal(plain, cached_warm)

    def test_hit_miss_counters(self):
        network = build_random_network(30, seed=1)
        cache = DistanceCache()
        reg = metrics.Registry()
        with metrics.use(reg):
            distance_matrix(network, [0, 5], [1, 2], cache=cache)
            distance_matrix(network, [0, 5, 9], [3], cache=cache)
        counts = reg.as_dict()
        assert counts["distcache.misses"] == 3  # sources 0, 5, 9
        assert counts["distcache.hits"] == 2  # 0 and 5 reused
        assert cache.stats()["misses"] == 3
        assert cache.stats()["hits"] == 2

    def test_lru_eviction(self):
        network = build_random_network(20, seed=2)
        cache = DistanceCache(max_entries=2)
        cache.lengths(network, 0)
        cache.lengths(network, 1)
        cache.lengths(network, 0)  # refresh 0; 1 is now LRU
        cache.lengths(network, 2)  # evicts 1
        assert (network.fingerprint, 0) in cache
        assert (network.fingerprint, 1) not in cache
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_entries_are_read_only(self):
        network = build_random_network(15, seed=3)
        cache = DistanceCache()
        entry = cache.lengths(network, 0)
        with pytest.raises(ValueError):
            entry[0] = -1.0

    def test_distinct_networks_never_collide(self):
        # Same node count, different weights: the fingerprint keys must
        # keep their vectors apart.
        a = build_random_network(25, seed=4)
        b = build_random_network(25, seed=5)
        cache = DistanceCache()
        da = cache.lengths(a, 0)
        db = cache.lengths(b, 0)
        assert cache.stats()["misses"] == 2
        assert not np.array_equal(da, db)

    def test_disconnected_inf_preserved(self):
        network = build_two_component_network()
        cache = DistanceCache()
        plain = distance_matrix(network, [0], [3, 4, 5])
        cached = distance_matrix(network, [0], [3, 4, 5], cache=cache)
        assert np.all(np.isinf(plain))
        assert np.array_equal(plain, cached)

    def test_clear_keeps_stats(self):
        network = build_random_network(10, seed=6)
        cache = DistanceCache()
        cache.lengths(network, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1


class TestActiveScope:
    def test_use_installs_and_restores(self):
        assert distcache.active() is None
        cache = DistanceCache()
        with distcache.use(cache):
            assert distcache.active() is cache
            inner = DistanceCache()
            with distcache.use(inner):
                assert distcache.active() is inner
            assert distcache.active() is cache
        assert distcache.active() is None

    def test_scope_primes_counters(self):
        reg = metrics.Registry()
        with metrics.use(reg), distcache.use(DistanceCache()):
            pass
        counts = reg.as_dict()
        assert counts["distcache.hits"] == 0
        assert counts["distcache.misses"] == 0
        assert counts["distcache.evictions"] == 0

    def test_distance_matrix_consults_active_scope(self):
        network = build_random_network(20, seed=7)
        cache = DistanceCache()
        with distcache.use(cache):
            distance_matrix(network, [0, 1], [2, 3])
        assert cache.stats()["misses"] == 2

    def test_explicit_false_disables_caching(self):
        network = build_random_network(20, seed=8)
        cache = DistanceCache()
        with distcache.use(cache):
            distance_matrix(network, [0], [1], cache=False)
        assert cache.stats()["misses"] == 0


class TestHarnessIntegration:
    def test_run_solvers_objectives_unchanged_by_cache(self):
        inst = build_random_instance(6, cap_range=(3, 6))
        methods = ["exact", "brnn", "kmedian-ls"]
        plain = run_solvers(inst, methods)
        cached = run_solvers(inst, methods, distance_cache=True)
        for p, c in zip(plain, cached, strict=True):
            assert c.objective == p.objective
            assert c.status == p.status == "ok"

    def test_run_solvers_shared_cache_records_hits(self):
        inst = build_random_instance(7, cap_range=(3, 6))
        cache = DistanceCache()
        run_solvers(inst, ["exact", "kmedian-ls"], distance_cache=cache)
        stats = cache.stats()
        assert stats["misses"] > 0
        # Both solvers query distances from shared customer/candidate
        # nodes, so the second solver must hit the first one's entries.
        assert stats["hits"] > 0
