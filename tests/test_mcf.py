"""Tests for the general min-cost flow solver, vs networkx references."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.flow.mcf import FlowError, FlowNetwork, min_cost_flow


def networkx_cost(n, arcs, supplies) -> float | None:
    g = nx.DiGraph()
    for v in range(n):
        g.add_node(v, demand=-supplies.get(v, 0))
    for idx, (tail, head, cap, cost) in enumerate(arcs):
        # networkx cannot hold parallel arcs in a DiGraph; expand via
        # intermediate nodes when needed.
        if g.has_edge(tail, head):
            aux = g.number_of_nodes()
            g.add_node(aux, demand=0)
            g.add_edge(tail, aux, capacity=cap, weight=cost)
            g.add_edge(aux, head, capacity=cap, weight=0)
        else:
            g.add_edge(tail, head, capacity=cap, weight=cost)
    try:
        return float(nx.min_cost_flow_cost(g))
    except nx.NetworkXUnfeasible:
        return None


class TestBasics:
    def test_single_path(self):
        result = min_cost_flow(
            3,
            [(0, 1, 5, 2.0), (1, 2, 5, 3.0)],
            {0: 4, 2: -4},
        )
        assert result.cost == pytest.approx(4 * 5.0)
        assert result.flows == [4, 4]

    def test_chooses_cheaper_route(self):
        result = min_cost_flow(
            4,
            [(0, 1, 10, 1.0), (1, 3, 10, 1.0), (0, 2, 10, 5.0), (2, 3, 10, 5.0)],
            {0: 3, 3: -3},
        )
        assert result.cost == pytest.approx(6.0)
        assert result.flows[0] == 3
        assert result.flows[2] == 0

    def test_splits_on_capacity(self):
        result = min_cost_flow(
            4,
            [(0, 1, 2, 1.0), (1, 3, 2, 1.0), (0, 2, 10, 5.0), (2, 3, 10, 5.0)],
            {0: 5, 3: -5},
        )
        # 2 units on the cheap path, 3 on the expensive one.
        assert result.cost == pytest.approx(2 * 2 + 3 * 10)

    def test_transit_nodes(self):
        result = min_cost_flow(
            3, [(0, 1, 9, 1.0), (1, 2, 9, 1.0)], {0: 2, 2: -2}
        )
        assert result.cost == pytest.approx(4.0)

    def test_zero_supply_trivial(self):
        result = min_cost_flow(2, [(0, 1, 5, 1.0)], {})
        assert result.cost == 0.0
        assert result.flows == [0.0]


class TestNegativeCosts:
    def test_negative_arc_cost_accepted(self):
        result = min_cost_flow(
            3,
            [(0, 1, 5, -2.0), (1, 2, 5, 3.0)],
            {0: 1, 2: -1},
        )
        assert result.cost == pytest.approx(1.0)

    def test_negative_cycle_rejected(self):
        network = FlowNetwork(2)
        network.add_arc(0, 1, 5, -3.0)
        network.add_arc(1, 0, 5, 1.0)
        with pytest.raises(FlowError, match="negative-cost cycle"):
            network.solve()


class TestErrors:
    def test_unbalanced_supplies(self):
        with pytest.raises(FlowError, match="sum to zero"):
            min_cost_flow(2, [(0, 1, 5, 1.0)], {0: 2, 1: -1})

    def test_infeasible_capacity(self):
        with pytest.raises(FlowError, match="infeasible"):
            min_cost_flow(2, [(0, 1, 1, 1.0)], {0: 3, 1: -3})

    def test_disconnected_demand(self):
        with pytest.raises(FlowError, match="infeasible"):
            min_cost_flow(3, [(0, 1, 5, 1.0)], {0: 1, 2: -1})

    def test_bad_nodes_and_caps(self):
        network = FlowNetwork(2)
        with pytest.raises(FlowError):
            network.add_arc(0, 5, 1, 1.0)
        with pytest.raises(FlowError):
            network.add_arc(0, 1, -1, 1.0)
        with pytest.raises(FlowError):
            FlowNetwork(0)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        arcs = []
        for _ in range(18):
            tail, head = rng.choice(n, size=2, replace=False)
            arcs.append(
                (
                    int(tail),
                    int(head),
                    int(rng.integers(1, 6)),
                    float(rng.integers(1, 10)),
                )
            )
        amount = int(rng.integers(1, 5))
        supplies = {0: amount, n - 1: -amount}
        ref = networkx_cost(n, arcs, supplies)
        if ref is None:
            with pytest.raises(FlowError):
                min_cost_flow(n, arcs, supplies)
            return
        result = min_cost_flow(n, arcs, supplies)
        assert result.cost == pytest.approx(ref)

    def test_multi_source_multi_sink(self):
        arcs = [
            (0, 2, 4, 1.0),
            (1, 2, 4, 2.0),
            (2, 3, 5, 1.0),
            (2, 4, 5, 3.0),
            (0, 4, 1, 10.0),
        ]
        supplies = {0: 3, 1: 2, 3: -4, 4: -1}
        ref = networkx_cost(5, arcs, supplies)
        result = min_cost_flow(5, arcs, supplies)
        assert result.cost == pytest.approx(ref)

    def test_property_random_vs_networkx(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=25, deadline=None)
        @given(seed=st.integers(0, 100_000), amount=st.integers(1, 6))
        def check(seed, amount):
            rng = np.random.default_rng(seed)
            n = 7
            arcs = []
            for _ in range(14):
                tail, head = rng.choice(n, size=2, replace=False)
                arcs.append(
                    (
                        int(tail),
                        int(head),
                        int(rng.integers(1, 5)),
                        float(rng.integers(0, 8)),
                    )
                )
            supplies = {0: amount, n - 1: -amount}
            ref = networkx_cost(n, arcs, supplies)
            if ref is None:
                with pytest.raises(FlowError):
                    min_cost_flow(n, arcs, supplies)
            else:
                result = min_cost_flow(n, arcs, supplies)
                assert result.cost == pytest.approx(ref)

        check()

    def test_flow_conservation(self):
        arcs = [
            (0, 1, 3, 1.0),
            (0, 2, 3, 2.0),
            (1, 3, 3, 1.0),
            (2, 3, 3, 1.0),
        ]
        supplies = {0: 4, 3: -4}
        result = min_cost_flow(4, arcs, supplies)
        inflow = [0.0] * 4
        for (tail, head, _, _), f in zip(arcs, result.flows, strict=True):
            inflow[head] += f
            inflow[tail] -= f
        assert inflow[0] == pytest.approx(-4)
        assert inflow[3] == pytest.approx(4)
        assert inflow[1] == pytest.approx(0)
        assert inflow[2] == pytest.approx(0)
