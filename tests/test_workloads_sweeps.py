"""Tests for temporal workloads and the multi-seed sweep runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.sweeps import aggregate, seeded_sweep
from repro.core.dynamic import DynamicAllocator
from repro.datagen.instances import uniform_instance
from repro.datagen.workloads import (
    WorkloadEvent,
    diurnal_rate,
    generate_workload,
    replay,
)
from repro.errors import MatchingError
from tests.conftest import build_grid_network


class TestDiurnalRate:
    def test_peaks_beat_base(self):
        assert diurnal_rate(9.0) > diurnal_rate(3.0)
        assert diurnal_rate(18.0) > diurnal_rate(3.0)

    def test_base_floor(self):
        for h in range(24):
            assert diurnal_rate(float(h), base=1.0, peak=4.0) >= 1.0

    def test_periodic(self):
        assert diurnal_rate(9.0) == pytest.approx(diurnal_rate(33.0))


class TestGenerateWorkload:
    def test_events_ordered_and_balanced(self):
        g = build_grid_network(5, 5)
        rng = np.random.default_rng(0)
        events = generate_workload(g, rng, hours=24.0)
        times = [e.time for e in events]
        assert times == sorted(times)
        arrivals = sum(1 for e in events if e.kind == "arrival")
        departures = sum(1 for e in events if e.kind == "departure")
        assert departures <= arrivals
        assert arrivals > 0

    def test_departures_reference_arrivals(self):
        g = build_grid_network(5, 5)
        rng = np.random.default_rng(1)
        events = generate_workload(g, rng, hours=12.0)
        for e in events:
            if e.kind == "departure":
                ref = events[e.ref]
                assert ref.kind == "arrival"
                assert ref.node == e.node
                assert ref.time <= e.time

    def test_node_weights_respected(self):
        g = build_grid_network(3, 3)
        rng = np.random.default_rng(2)
        weights = np.zeros(9)
        weights[4] = 1.0
        events = generate_workload(
            g, rng, hours=24.0, node_weights=weights
        )
        assert all(e.node == 4 for e in events)

    def test_invalid_args(self):
        g = build_grid_network(3, 3)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_workload(g, rng, hours=0.0)
        with pytest.raises(ValueError):
            generate_workload(g, rng, node_weights=np.zeros(9))

    def test_replay_counts_active(self):
        events = [
            WorkloadEvent(0.0, "arrival", 1, 0),
            WorkloadEvent(1.0, "arrival", 2, 1),
            WorkloadEvent(2.0, "departure", 1, 0),
        ]
        actives = [active for _, active in replay(events)]
        assert actives == [1, 2, 1]

    def test_feeds_dynamic_allocator(self):
        from repro.core.instance import MCFSInstance

        g = build_grid_network(6, 6)
        inst = MCFSInstance(
            network=g,
            customers=(0,),
            facility_nodes=(7, 14, 28),
            capacities=(30, 30, 30),
            k=3,
        )
        alloc = DynamicAllocator(inst, [0, 1, 2])
        rng = np.random.default_rng(3)
        events = generate_workload(g, rng, hours=8.0, base_rate=3.0)
        handles: dict[int, int] = {}
        for pos, event in enumerate(events):
            if event.kind == "arrival":
                try:
                    handles[pos] = alloc.add_customer(event.node)
                except MatchingError:
                    pass
            elif event.ref in handles:
                alloc.remove_customer(handles.pop(event.ref))
        assert alloc.cost >= 0.0


class TestSweeps:
    def test_seeded_sweep_and_aggregate(self):
        def factory(seed):
            return [
                (
                    {"n": n},
                    uniform_instance(n, seed=seed),
                )
                for n in (96, 128)
            ]

        rows = seeded_sweep(
            factory, seeds=(0, 1), methods=("wma", "hilbert"), x_key="n"
        )
        assert len(rows) == 2 * 2 * 2  # seeds x sizes x methods
        agg = aggregate(rows, x_key="n")
        by_key = {(r["method"], r["n"]): r for r in agg}
        assert by_key[("wma", 96)]["runs"] == 2
        assert by_key[("wma", 96)]["objective_std"] is not None
        assert by_key[("wma", 96)]["failures"] == 0

    def test_aggregate_handles_failures(self):
        from repro.bench.harness import BenchRow

        rows = [
            BenchRow("a", "exact", 5.0, 0.1, params={"n": 8, "seed": 0}),
            BenchRow(
                "a", "exact", None, None, status="timeout",
                params={"n": 8, "seed": 1},
            ),
        ]
        agg = aggregate(rows, x_key="n")
        assert agg[0]["objective_mean"] == 5.0
        assert agg[0]["failures"] == 1
        assert agg[0]["runs"] == 2

    def test_aggregate_all_failed(self):
        from repro.bench.harness import BenchRow

        rows = [
            BenchRow(
                "a", "exact", None, None, status="timeout",
                params={"n": 8, "seed": 0},
            ),
        ]
        agg = aggregate(rows, x_key="n")
        assert agg[0]["objective_mean"] is None
