"""Fault-injection tests: every degradation path returns feasible answers."""

from __future__ import annotations

import pytest

from repro import MCFSInstance, SolverOptions, solve
from repro.core.validation import validate_solution
from repro.datagen import uniform_instance
from repro.errors import (
    BudgetExceeded,
    InfeasibleInstanceError,
    MatchingError,
    ReproError,
    SolverError,
)
from repro.obs import metrics
from repro.runtime import (
    DEFAULT_CHAINS,
    FaultPlan,
    faults as faults_mod,
    solve_with_fallback,
    use_faults,
)


@pytest.fixture(scope="module")
def instance() -> MCFSInstance:
    return uniform_instance(96, seed=3)


# ----------------------------------------------------------------------
# FaultPlan semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_forced_timeout(self):
        plan = FaultPlan(timeout_methods={"exact"})
        with pytest.raises(BudgetExceeded, match="injected timeout"):
            plan.raise_for_attempt("exact", 0)
        plan.raise_for_attempt("wma", 0)  # untouched method: no raise

    def test_error_kinds(self):
        cases = {
            "solver": SolverError,
            "matching": MatchingError,
            "infeasible": InfeasibleInstanceError,
            "timeout": BudgetExceeded,
        }
        for kind, exc_type in cases.items():
            plan = FaultPlan(error_methods={"wma": kind})
            with pytest.raises(exc_type, match="injected"):
                plan.raise_for_attempt("wma", 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(error_methods={"wma": "explosion"})

    def test_timeout_rate_is_deterministic(self):
        plan_a = FaultPlan(seed=7, timeout_rate=0.5)
        plan_b = FaultPlan(seed=7, timeout_rate=0.5)
        decisions_a = [plan_a._times_out("wma", i) for i in range(50)]
        decisions_b = [plan_b._times_out("wma", i) for i in range(50)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seed_different_schedule(self):
        a = [
            FaultPlan(seed=1, timeout_rate=0.5)._times_out("wma", i)
            for i in range(50)
        ]
        b = [
            FaultPlan(seed=2, timeout_rate=0.5)._times_out("wma", i)
            for i in range(50)
        ]
        assert a != b

    def test_scope_installs_and_restores(self):
        assert faults_mod.active() is None
        plan = FaultPlan(dijkstra_delay_sec=0.001)
        with use_faults(plan):
            assert faults_mod.active() is plan
        assert faults_mod.active() is None

    def test_no_plan_means_no_injection(self, instance):
        sol = solve(instance, method="hilbert")
        validate_solution(instance, sol)


# ----------------------------------------------------------------------
# Fallback chains under injected faults
# ----------------------------------------------------------------------
class TestChainsUnderFaults:
    @pytest.mark.parametrize("method", sorted(DEFAULT_CHAINS))
    def test_lead_method_timeout_still_feasible(self, instance, method):
        # Force the chain's lead method to time out; every default chain
        # must still produce a feasible validated solution (hilbert has
        # no fallback, so the timeout is its documented outcome).
        chain = DEFAULT_CHAINS[method]
        plan = FaultPlan(timeout_methods={method})
        reg = metrics.Registry()
        with metrics.use(reg), use_faults(plan):
            if len(chain) == 1:
                with pytest.raises(BudgetExceeded):
                    solve_with_fallback(instance, chain)
                return
            result = solve_with_fallback(instance, chain)
        validate_solution(instance, result.solution)
        assert result.method != method
        assert result.runs[0].status == "timeout"
        counters = reg.as_dict()
        assert counters["runtime.fallbacks"] >= 1
        assert counters["runtime.attempts"] == len(result.runs)

    def test_injected_infeasible_falls_through(self, instance):
        plan = FaultPlan(error_methods={"exact": "infeasible"})
        reg = metrics.Registry()
        with metrics.use(reg), use_faults(plan):
            result = solve_with_fallback(instance, ("exact", "wma", "hilbert"))
        assert result.runs[0].status == "error"
        assert "InfeasibleInstanceError" in result.runs[0].error
        assert result.method == "wma"
        validate_solution(instance, result.solution)

    def test_injected_matching_error_falls_through(self, instance):
        plan = FaultPlan(error_methods={"wma": "matching"})
        with use_faults(plan):
            result = solve_with_fallback(instance, ("wma", "hilbert"))
        assert result.method == "hilbert"
        assert result.fallbacks == 1
        validate_solution(instance, result.solution)

    def test_every_method_faulty_raises_last_error(self, instance):
        plan = FaultPlan(
            error_methods={"wma": "solver", "hilbert": "solver"}
        )
        with use_faults(plan):
            with pytest.raises(SolverError, match="injected"):
                solve_with_fallback(instance, ("wma", "hilbert"))

    def test_meta_runtime_reflects_injected_fallback(self, instance):
        plan = FaultPlan(timeout_methods={"exact"})
        with use_faults(plan):
            sol = solve(instance, method="exact", deadline=5.0)
        meta = sol.meta["runtime"]
        assert meta["requested"] == "exact"
        assert meta["method_used"] != "exact"
        assert meta["fallbacks"] >= 1
        assert meta["attempts"][0]["status"] == "timeout"


# ----------------------------------------------------------------------
# Slow-Dijkstra injection: real checkpoint-driven degradation
# ----------------------------------------------------------------------
class TestSlowDijkstra:
    def test_delay_drives_cooperative_timeout(self, instance):
        # The delay makes every budget check cost ~5ms, so a 20ms budget
        # expires inside the solver hot loop (a *real* checkpoint
        # timeout, not an injected raise); the chain still answers.
        plan = FaultPlan(dijkstra_delay_sec=0.005)
        reg = metrics.Registry()
        with metrics.use(reg), use_faults(plan):
            result = solve_with_fallback(
                instance, ("wma", "hilbert"), deadline=0.02
            )
        validate_solution(instance, result.solution)
        counters = reg.as_dict()
        assert counters.get("runtime.budget_exceeded", 0) >= 1
        # Either wma salvaged a degraded best-so-far solution or the
        # chain fell through to hilbert -- both are service-grade
        # outcomes, and both must be observable.
        degraded = result.solution.meta.get("degraded", False)
        assert degraded or result.method == "hilbert"
        if degraded:
            assert counters.get("runtime.degraded_returns", 0) >= 1

    def test_degraded_wma_solution_is_feasible(self, instance):
        # Give wma enough budget to finish its greedy seeding but not
        # the full exploration; the salvage path must return a feasible
        # (if suboptimal) solution rather than raising.
        plan = FaultPlan(dijkstra_delay_sec=0.002)
        with use_faults(plan):
            try:
                sol = solve(
                    instance,
                    method="wma",
                    options=SolverOptions(time_limit=0.05),
                )
            except ReproError as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"degradation path raised: {exc!r}")
        validate_solution(instance, sol)

    def test_delay_cleared_after_scope(self, instance):
        from repro.runtime import budget as budget_mod

        with use_faults(FaultPlan(dijkstra_delay_sec=0.5)):
            pass
        assert budget_mod._fault_delay == 0.0
        # And a normal solve is fast again.
        sol = solve(instance, method="hilbert")
        validate_solution(instance, sol)


# ----------------------------------------------------------------------
# Degraded best-so-far returns per solver
# ----------------------------------------------------------------------
class TestDegradedReturns:
    def test_kmedian_salvage_when_budget_expires_midsearch(self, instance):
        # A delay small enough for greedy init to finish but large
        # enough that swap rounds blow the budget: kmedian-ls must
        # return its best-so-far selection, marked degraded.
        from repro.baselines.kmedian_ls import solve_kmedian_ls

        plan = FaultPlan(dijkstra_delay_sec=0.0005)
        reg = metrics.Registry()
        with metrics.use(reg), use_faults(plan):
            try:
                sol = solve_kmedian_ls(
                    instance, options=SolverOptions(time_limit=0.3)
                )
            except BudgetExceeded:
                pytest.skip("budget expired before a salvageable state")
        validate_solution(instance, sol)
        if sol.meta.get("degraded"):
            assert reg.as_dict()["runtime.degraded_returns"] >= 1

    def test_wma_degraded_meta_flag(self, instance):
        from repro.core.wma import solve_wma

        plan = FaultPlan(dijkstra_delay_sec=0.01)
        with use_faults(plan):
            sol = solve_wma(
                instance, options=SolverOptions(time_limit=0.02)
            )
        assert sol.meta.get("degraded") is True
        validate_solution(instance, sol)
