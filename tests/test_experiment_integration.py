"""Integration smoke tests: every paper experiment at miniature scale.

These run each experiment factory with tiny parameters and the full
method line-up, so a regression anywhere in the datagen -> solver ->
validation pipeline is caught by the fast test suite (the benchmarks
exercise realistic sizes).
"""

from __future__ import annotations

import pytest

from repro.bench import experiments as ex
from repro.bench.harness import run_solvers

TINY_SIZES = (96, 128)
METHODS = ("wma", "hilbert", "wma-naive")


def assert_all_ok(rows):
    bad = [r for r in rows if r.failed]
    assert not bad, [(r.method, r.meta.get("error")) for r in bad]


@pytest.mark.parametrize(
    "factory",
    [ex.fig6a_cases, ex.fig6b_cases, ex.fig6c_cases, ex.fig6d_cases],
    ids=["6a", "6b", "6c", "6d"],
)
def test_fig6_miniature(factory):
    rows = []
    for params, inst in factory(sizes=TINY_SIZES, seed=3):
        rows += run_solvers(inst, METHODS, params=params)
    assert_all_ok(rows)


@pytest.mark.parametrize(
    "factory",
    [ex.fig7a_cases, ex.fig7b_cases, ex.fig7c_cases, ex.fig7d_cases],
    ids=["7a", "7b", "7c", "7d"],
)
def test_fig7_miniature(factory):
    rows = []
    for params, inst in factory(sizes=TINY_SIZES, seed=3):
        rows += run_solvers(inst, METHODS, params=params)
    assert_all_ok(rows)


def test_fig8_miniature():
    sweeps = [
        ex.fig8a_cases(n=128, fracs=(0.5, 1.0), seeds=(0,)),
        ex.fig8b_cases(n=128, m_values=(12, 25)),
        ex.fig8c_cases(n=96, m_values=(48, 96)),
        ex.fig8d_cases(n=128, k_fracs=(0.2, 0.5)),
    ]
    for cases in sweeps:
        rows = []
        for params, inst in cases:
            rows += run_solvers(inst, METHODS, params=params)
        assert_all_ok(rows)


def test_fig9_miniature():
    for cases in (
        ex.fig9a_cases(n=128, alphas=(1.2, 1.8)),
        ex.fig9b_cases(n=128, capacities=(4, 12)),
    ):
        rows = []
        for params, inst in cases:
            rows += run_solvers(inst, METHODS, params=params)
        assert_all_ok(rows)


def test_table4_miniature():
    rows = []
    for params, inst in ex.table4_cases(scale=0.06, m=20, k=4, capacity=10):
        rows += run_solvers(inst, METHODS, params=params)
    assert_all_ok(rows)


def test_fig10_miniature():
    rows = []
    for params, inst in ex.fig10_cases(m_values=(12, 24), scale=0.08):
        rows += run_solvers(inst, METHODS, params=params)
    assert_all_ok(rows)


def test_fig12_miniature():
    rows = []
    cases = ex.fig12a_cases(
        k_values=(10, 16), scale=0.06, n_venues=40, m=30
    )
    for params, inst in cases:
        rows += run_solvers(
            inst, METHODS + ("wma-uf",), params=params
        )
    assert_all_ok(rows)


def test_fig13_miniature():
    for cases in (
        ex.fig13a_cases(k_values=(8, 12), scale=0.06, n_venues=30, m=20),
        ex.fig13b_cases(k_values=(12, 18), scale=0.06, n_stations=40, m=25),
    ):
        rows = []
        for params, inst in cases:
            rows += run_solvers(inst, METHODS, params=params)
        assert_all_ok(rows)
