"""Tests for the top-level public API."""

from __future__ import annotations

import pytest

import repro
from repro import SOLVERS, solve, validate_solution
from tests.conftest import build_random_instance


class TestSolveDispatch:
    def test_all_registered_methods_run(self):
        inst = build_random_instance(0, cap_range=(4, 8))
        for method in SOLVERS:
            sol = solve(inst, method=method)
            validate_solution(inst, sol)

    def test_unknown_method_rejected(self):
        inst = build_random_instance(0, cap_range=(4, 8))
        with pytest.raises(ValueError, match="unknown method"):
            solve(inst, method="magic")

    def test_kwargs_forwarded(self):
        inst = build_random_instance(0, cap_range=(4, 8))
        a = solve(inst, method="random", seed=1)
        b = solve(inst, method="random", seed=2)
        # Different seeds explore different selections (usually).
        assert a.selected != b.selected or a.objective == b.objective

    def test_default_method_is_wma(self):
        inst = build_random_instance(1, cap_range=(4, 8))
        sol = solve(inst)
        assert sol.meta["algorithm"] == "wma"


class TestPackageSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_error_hierarchy(self):
        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.InfeasibleInstanceError, repro.ReproError)
        assert issubclass(repro.MatchingError, repro.ReproError)
        assert issubclass(repro.SolverError, repro.ReproError)
        assert issubclass(repro.InvalidInstanceError, repro.ReproError)

    def test_docstring_quickstart_runs(self):
        from repro.datagen import uniform_instance

        instance = uniform_instance(256, seed=7)
        solution = solve(instance, method="wma")
        assert solution.objective > 0
