"""Tests for the online serving engine (:mod:`repro.serve`).

Covers the typed-mutation vocabulary and trace I/O, admission control,
the fingerprint-keyed solution cache, and the engine itself: warm
incremental arrivals, component-scoped departure repair, capacity
re-rates, edge retimes with global re-solve, deadlines, and the
staleness contract -- each checked against a cold ``assign_all`` oracle
for bit-identical cost.
"""

from __future__ import annotations

import json

import pytest

from repro.core.instance import MCFSInstance
from repro.errors import InvalidInstanceError, MatchingError
from repro.flow.bipartite import BipartiteState
from repro.flow.sspa import assign_all
from repro.obs import metrics
from repro.serve import (
    AdmissionController,
    CapacityChange,
    CustomerArrive,
    CustomerDepart,
    EdgeRetime,
    ServeEngine,
    Snapshot,
    SolutionCache,
    load_trace,
    mutation_kind,
    save_trace,
    state_digest,
    synthesize_trace,
)
from tests.conftest import build_grid_network, build_line_network

GRID = build_grid_network(5, 5)


def grid_instance(customers=(6, 18), capacities=(3, 3, 3)) -> MCFSInstance:
    return MCFSInstance(
        network=GRID,
        customers=customers,
        facility_nodes=(0, 12, 24),
        capacities=capacities,
        k=3,
    )


def cold_cost(engine: ServeEngine) -> float:
    """A cold re-solve of the engine's current end state."""
    nodes = engine.customer_nodes()
    if not nodes:
        return 0.0
    return assign_all(
        engine.network,
        nodes,
        list(engine.selected_nodes),
        list(engine.selected_capacities),
    ).cost


class TestMutations:
    def test_kind_tags(self):
        assert mutation_kind(CustomerArrive(3)) == "arrive"
        assert mutation_kind(CustomerDepart(0)) == "depart"
        assert mutation_kind(CapacityChange(5, 2)) == "capacity"
        assert mutation_kind(EdgeRetime(0, 1, 2.0)) == "retime"

    def test_trace_round_trip(self, tmp_path):
        mutations = [
            CustomerArrive(7),
            CustomerDepart(0),
            CapacityChange(12, 4),
            EdgeRetime(0, 1, 2.5),
        ]
        path = str(tmp_path / "trace.jsonl")
        assert save_trace(path, mutations) == 4
        assert load_trace(path) == mutations

    def test_load_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "teleport", "node": 3}\n')
        with pytest.raises(InvalidInstanceError, match="unknown mutation kind"):
            load_trace(str(path))

    def test_load_rejects_bad_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "arrive", "nod": 3}\n')
        with pytest.raises(InvalidInstanceError, match="bad 'arrive'"):
            load_trace(str(path))

    def test_synthesize_is_deterministic(self):
        kwargs = dict(facility_nodes=[0, 24], capacities=[3, 3], seed=9)
        assert synthesize_trace(GRID, 50, **kwargs) == synthesize_trace(
            GRID, 50, **kwargs
        )

    def test_synthesized_trace_never_rejects(self):
        inst = grid_instance(customers=(6,), capacities=(2, 2, 2))
        trace = synthesize_trace(
            GRID,
            300,
            facility_nodes=[0, 12, 24],
            capacities=[2, 2, 2],
            start_handle=1,
            customer_nodes=[6],
            seed=3,
            p_retime=0.05,
        )
        assert len(trace) == 300
        engine = ServeEngine(inst, [0, 1, 2])
        result = engine.apply(trace)
        assert result.rejected == 0
        assert result.shed == 0
        assert engine.cost == cold_cost(engine)


class TestAdmission:
    def test_unbounded_admits_everything(self):
        ctrl = AdmissionController()
        accepted, shed = ctrl.admit([CustomerArrive(i) for i in range(5)])
        assert len(accepted) == 5 and shed == []

    def test_bounded_sheds_suffix(self):
        ctrl = AdmissionController(max_batch=2)
        batch = [CustomerArrive(i) for i in range(5)]
        accepted, shed = ctrl.admit(batch)
        assert accepted == batch[:2]
        assert shed == batch[2:]
        assert ctrl.admitted_total == 2 and ctrl.shed_total == 3

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_batch=-1)


class TestCache:
    def test_digest_sensitivity(self):
        base = state_digest("fp", [0, 12], [3, 3], [6, 18])
        assert base == state_digest("fp", [0, 12], [3, 3], [6, 18])
        assert base != state_digest("fq", [0, 12], [3, 3], [6, 18])
        assert base != state_digest("fp", [0, 24], [3, 3], [6, 18])
        assert base != state_digest("fp", [0, 12], [3, 4], [6, 18])
        assert base != state_digest("fp", [0, 12], [3, 3], [18, 6])

    def test_lru_eviction(self):
        state = assign_all(GRID, [6], [0], [1]).state
        snap = Snapshot.capture(state)
        cache = SolutionCache(capacity=2)
        cache.put("a", snap)
        cache.put("b", snap)
        assert cache.get("a") is snap  # refreshes "a"
        cache.put("c", snap)  # evicts "b", the least recent
        assert cache.get("b") is None
        assert cache.get("a") is snap and cache.get("c") is snap
        assert len(cache) == 2

    def test_snapshot_restores_bit_identical_state(self):
        state = assign_all(GRID, [6, 18, 13], [0, 24], [2, 2]).state
        snap = Snapshot.capture(state)
        fresh = BipartiteState(GRID, [6, 18, 13], [0, 24], [2, 2])
        snap.restore(fresh)
        assert fresh.total_cost() == state.total_cost()
        assert fresh.matched == state.matched
        assert fresh.customer_potential == state.customer_potential
        assert list(fresh.facility_potential) == list(state.facility_potential)


class TestEngineArrivals:
    def test_seeded_engine_matches_cold_solve(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        assert engine.n_active == 2
        assert engine.staleness == "optimal"
        assert engine.cost == cold_cost(engine)

    def test_empty_selection_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ServeEngine(grid_instance(), [])

    def test_arrivals_only_stream_is_incremental_and_exact(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2], seed_customers=False)
        registry = metrics.Registry()
        with metrics.use(registry):
            result = engine.apply([CustomerArrive(n) for n in (6, 18, 13, 2)])
        assert result.applied == 4
        assert result.staleness == "optimal"
        assert not result.global_repair and result.repaired_components == 0
        assert engine.cost == cold_cost(engine)
        # Warm arrivals never re-run the cold assignment machinery.
        assert registry.as_dict().get("dijkstra.kernel_runs", 0) == 0

    def test_arrival_beyond_capacity_rejects_and_rolls_back(self):
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(0, 1),
            facility_nodes=(2,),
            capacities=(2,),
            k=1,
        )
        engine = ServeEngine(inst, [0])
        result = engine.apply([CustomerArrive(3)])
        assert result.rejected == 1
        assert engine.n_active == 2
        assert engine.staleness == "optimal"
        assert engine.cost == cold_cost(engine)

    def test_arrival_outside_network_rejected(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        outcome = engine.apply([CustomerArrive(99)]).outcomes[0]
        assert outcome.status == "rejected"
        assert "outside network" in outcome.detail

    def test_handles_are_sequential_and_queryable(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        result = engine.apply([CustomerArrive(13)])
        handle = result.outcomes[0].handle
        assert handle == 2  # two seed customers came first
        assert engine.node_of(handle) == 13
        assert engine.handles() == [0, 1, 2]
        assert engine.customer_nodes() == [6, 18, 13]
        assert set(engine.assignment()) == {0, 1, 2}


class TestEngineDepartures:
    def test_departure_repairs_component_scoped(self):
        # Two customers compete for one seat at the good facility; when
        # the winner leaves, the loser must move into the freed seat.
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(5, 4),
            facility_nodes=(5, 9),
            capacities=(1, 5),
            k=2,
        )
        engine = ServeEngine(inst, [0, 1])
        assert engine.cost == pytest.approx(5.0)
        result = engine.apply([CustomerDepart(0)])
        assert result.applied == 1
        assert result.repaired_components == 1
        assert result.moves == 1
        assert engine.cost == pytest.approx(1.0)
        assert engine.cost == cold_cost(engine)

    def test_departure_of_unknown_handle_rejected(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        engine.apply([CustomerDepart(0)])
        outcome = engine.apply([CustomerDepart(0)]).outcomes[0]
        assert outcome.status == "rejected"
        assert "no active customer" in outcome.detail

    def test_lazy_mode_defers_then_repairs(self):
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(5, 4),
            facility_nodes=(5, 9),
            capacities=(1, 5),
            k=2,
        )
        engine = ServeEngine(inst, [0, 1], auto_repair=False)
        result = engine.apply([CustomerDepart(0)])
        assert result.staleness == "feasible"
        assert engine.cost == pytest.approx(5.0)  # stale but feasible
        assert engine.repair() == 1
        assert engine.staleness == "optimal"
        assert engine.cost == pytest.approx(1.0)


class TestEngineCapacity:
    def test_noop_and_unknown_facility(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        outcomes = engine.apply(
            [CapacityChange(0, 3), CapacityChange(7, 5)]
        ).outcomes
        assert outcomes[0].status == "applied"  # no-op re-rate
        assert outcomes[1].status == "rejected"
        assert "not a selected facility" in outcomes[1].detail

    def test_increase_on_saturated_facility_reoptimizes(self):
        # Both want node-5's facility (capacity 1); one is pushed to
        # node 9.  Raising node-5's capacity must pull them both in.
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(5, 4),
            facility_nodes=(5, 9),
            capacities=(1, 5),
            k=2,
        )
        engine = ServeEngine(inst, [0, 1])
        assert engine.cost == pytest.approx(5.0)
        result = engine.apply([CapacityChange(5, 2)])
        assert result.repaired_components == 1
        assert engine.cost == pytest.approx(1.0)
        assert engine.selected_capacities == (2, 5)
        assert engine.cost == cold_cost(engine)

    def test_decrease_below_load_evicts_but_stays_optimal(self):
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(5, 4),
            facility_nodes=(5, 9),
            capacities=(2, 5),
            k=2,
        )
        engine = ServeEngine(inst, [0, 1])
        result = engine.apply([CapacityChange(5, 1)])
        assert result.outcomes[0].status == "applied"
        loads = engine.load_per_facility()
        assert loads[0] <= 1
        assert engine.cost == cold_cost(engine)
        assert engine.staleness == "optimal"

    def test_stranding_decrease_rejected(self):
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(0, 1),
            facility_nodes=(2,),
            capacities=(2,),
            k=1,
        )
        engine = ServeEngine(inst, [0])
        outcome = engine.apply([CapacityChange(2, 1)]).outcomes[0]
        assert outcome.status == "rejected"
        assert "strand" in outcome.detail
        assert engine.selected_capacities == (2,)


class TestEngineRetime:
    def test_retime_triggers_global_repair(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        result = engine.apply([EdgeRetime(6, 7, 10.0)])
        assert result.outcomes[0].status == "applied"
        assert result.global_repair
        assert engine.staleness == "optimal"
        assert engine.cost == cold_cost(engine)

    def test_retime_unknown_edge_rejected(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        outcome = engine.apply([EdgeRetime(0, 24, 1.0)]).outcomes[0]
        assert outcome.status == "rejected"
        assert "no edge" in outcome.detail

    def test_retime_bad_weight_rejected(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        for weight in (0.0, -1.0, float("inf"), float("nan")):
            outcome = engine.apply([EdgeRetime(6, 7, weight)]).outcomes[0]
            assert outcome.status == "rejected", weight

    def test_oscillating_retimes_hit_the_cache(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2], cache=4)
        edges = list(GRID.edges())
        u, v, w = edges[0]
        rush = engine.apply([EdgeRetime(int(u), int(v), float(w) * 3)])
        assert not rush.cache_hit
        calm = engine.apply([EdgeRetime(int(u), int(v), float(w))])
        assert not calm.cache_hit  # first time back at base weights
        rush2 = engine.apply([EdgeRetime(int(u), int(v), float(w) * 3)])
        assert rush2.cache_hit
        assert rush2.staleness == "cached"
        assert engine.cost == pytest.approx(rush.cost)
        assert engine.cost == cold_cost(engine)

    def test_arrival_after_retime_in_same_batch_is_deferred_then_served(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        result = engine.apply([EdgeRetime(6, 7, 5.0), CustomerArrive(13)])
        assert [o.status for o in result.outcomes] == ["applied", "applied"]
        assert result.staleness == "optimal"
        assert engine.n_active == 3
        assert engine.cost == cold_cost(engine)


class TestDeadlinesAndAdmission:
    def test_expired_deadline_sheds_but_stays_feasible(self):
        engine = ServeEngine(grid_instance(), [0, 1, 2])
        before = engine.cost
        result = engine.apply(
            [CustomerArrive(13), CustomerArrive(2)], deadline=0.0
        )
        assert result.deadline_exceeded
        assert result.shed == 2
        assert all(o.detail == "deadline" for o in result.outcomes)
        assert engine.n_active == 2
        assert engine.cost == before

    def test_deadline_shed_departure_repair_deferred_not_lost(self):
        inst = MCFSInstance(
            network=build_line_network(12),
            customers=(5, 4),
            facility_nodes=(5, 9),
            capacities=(1, 5),
            k=2,
        )
        engine = ServeEngine(inst, [0, 1])
        # Generous deadline: the departure applies; the optimality repair
        # is mandatory-free so a later repair() must finish the job even
        # if a pathological clock sheds it.
        result = engine.apply([CustomerDepart(0)], deadline=30.0)
        assert result.applied == 1
        engine.repair()
        assert engine.staleness == "optimal"
        assert engine.cost == pytest.approx(1.0)

    def test_queue_overflow_sheds_suffix(self):
        engine = ServeEngine(
            grid_instance(), [0, 1, 2], max_batch=2, seed_customers=False
        )
        result = engine.apply([CustomerArrive(n) for n in (6, 18, 13, 2)])
        assert result.applied == 2
        assert result.shed == 2
        assert [o.detail for o in result.outcomes[-2:]] == ["queue", "queue"]
        assert engine.n_active == 2

    def test_serve_counters_emitted(self):
        registry = metrics.Registry()
        with metrics.use(registry):
            engine = ServeEngine(grid_instance(), [0, 1, 2], max_batch=8)
            engine.apply([CustomerArrive(13), CustomerDepart(0)])
        counts = registry.as_dict()
        assert counts["serve.batches"] == 1
        assert counts["serve.mutations"] == 2
        assert counts["serve.applied"] == 2
        assert counts["serve.repairs_component"] == 1
        assert counts["serve.shed_queue"] == 0
        assert counts["serve.cache_misses"] == 0


class TestServeCLI:
    def test_synthesize_replay_and_summary(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        summary = tmp_path / "summary.json"
        code = main(
            [
                "serve",
                "--n", "64",
                "--seed", "2",
                "--synthesize", "80",
                "--trace", str(trace),
                "--batch", "16",
                "-o", str(summary),
            ]
        )
        assert code == 0
        doc = json.loads(summary.read_text())
        assert doc["n_mutations"] == 80
        assert doc["rejected"] == 0 and doc["shed"] == 0
        assert doc["staleness"]["optimal"] + doc["staleness"]["cached"] == (
            doc["batches"]
        )
        assert doc["metrics"]["serve.mutations"] == 80
        # The written trace replays to the same end state.
        summary2 = tmp_path / "summary2.json"
        code = main(
            [
                "serve",
                "--n", "64",
                "--seed", "2",
                "--trace", str(trace),
                "--batch", "16",
                "-o", str(summary2),
            ]
        )
        assert code == 0
        doc2 = json.loads(summary2.read_text())
        assert doc2["final_cost"] == doc["final_cost"]

    def test_requires_trace_or_synthesize(self, capsys):
        from repro.cli import main

        assert main(["serve", "--n", "64"]) == 2
        assert "--trace" in capsys.readouterr().err
