"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    GraphError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    MatchingError,
    ReproError,
    SolverError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            InfeasibleInstanceError,
            InvalidInstanceError,
            MatchingError,
            SolverError,
        ],
    )
    def test_subclasses_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_single_catch_clause(self):
        """One except ReproError suffices for all library failures."""
        for exc in (GraphError, MatchingError, SolverError):
            with pytest.raises(ReproError):
                raise exc("boom")

    def test_messages_preserved(self):
        try:
            raise InfeasibleInstanceError("k too small")
        except ReproError as caught:
            assert "k too small" in str(caught)

    def test_distinct_branches(self):
        """Sibling errors do not catch each other."""
        with pytest.raises(GraphError):
            try:
                raise GraphError("g")
            except MatchingError:  # pragma: no cover - must not trigger
                pytest.fail("MatchingError must not catch GraphError")
