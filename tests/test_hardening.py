"""Hardening tests for auxiliary code paths."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.datagen.urban import _stitch_components, organic_city, radial_city
from repro.network.components import connected_components
from repro.network.graph import Network


class TestStitchComponents:
    def test_single_component_no_extra_edges(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        edges = {(0, 1), (1, 2)}
        assert _stitch_components(coords, edges) == set()

    def test_two_components_one_bridge(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        edges = {(0, 1), (2, 3)}
        extra = _stitch_components(coords, edges)
        assert extra == {(1, 2)}  # nearest pair across the gap

    def test_many_singletons(self):
        coords = np.array([[float(i), 0.0] for i in range(5)])
        extra = _stitch_components(coords, set())
        # 4 bridges connect 5 singletons.
        assert len(extra) == 4

    def test_organic_city_connected(self):
        for seed in range(4):
            g = organic_city(200, seed=seed)
            assert len(connected_components(g)) == 1

    def test_organic_city_unconnected_option(self):
        g_conn = organic_city(300, seed=1, connect=True)
        g_raw = organic_city(300, seed=1, connect=False)
        assert g_raw.n_edges <= g_conn.n_edges


class TestRadialHubDegree:
    def test_hub_degree_capped(self):
        g = radial_city(6, 48, drop_rate=0.0, hub_degree=6)
        assert g.degree(0) <= 8  # 48/6 = step 8 -> 6 connections

    def test_small_spoke_count_unaffected(self):
        g = radial_city(2, 6, drop_rate=0.0, hub_degree=6)
        assert g.degree(0) == 6


class TestDirectedStats:
    def test_stats_on_directed_graph(self):
        g = Network(3, [(0, 1, 2.0), (1, 2, 4.0)], directed=True)
        stats = g.stats()
        assert stats.n_edges == 2
        assert stats.avg_edge_length == pytest.approx(3.0)
        # Weak connectivity: one component.
        assert stats.n_components == 1


class TestMainModule:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "generate" in result.stdout
