"""Tests for the whole-program graph layer (:mod:`repro.analysis.graphs`)
and the cross-file rules built on it (REP101-REP104), plus the graph
exports and the baseline ratchet check.

Fixture mini-packages live in ``tests/fixtures`` (see its README); the
rule positive/negative cases build throwaway trees under ``tmp_path``
with the same helper style as ``tests/test_reprolint.py``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.engine import LintEngine, default_root
from repro.analysis.graphs import (
    SOLVERS_NODE,
    AnalysisProject,
    check_layering,
    layer_table,
    rank_of,
)
from repro.analysis.lintcli import main as lint_main
from repro.analysis.lintcli import ratchet_check
from repro.analysis.reports import (
    GRAPH_FORMATS,
    GRAPH_KINDS,
    render_graph,
    render_layer_table,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: Registry + user files keeping REP001 quiet in throwaway trees.
REGISTRY_FILES = {
    "obs/names.py": """
        COUNTERS = frozenset()
        GAUGES = frozenset()
        TIMERS = frozenset()
    """,
}


def project_for(root: Path) -> AnalysisProject:
    """Parse a fixture tree into an AnalysisProject (no rules run)."""
    return LintEngine(root, rules=[]).parse_project()


def run_lint(tmp_path, files, rules=None):
    """Write ``files`` (rel-path -> source) under ``tmp_path`` and lint."""
    for rel, source in {**REGISTRY_FILES, **files}.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return LintEngine(tmp_path, rules=rules).run()


def findings_for(result, rule):
    return [f for f in result.findings if f.rule == rule]


# ----------------------------------------------------------------------
# Import graph
# ----------------------------------------------------------------------
class TestImportGraph:
    def test_eager_cycle_detected(self):
        graph = project_for(FIXTURES / "cyclepkg").imports
        assert graph.eager_cycles() == [["alpha", "beta"]]

    def test_lazy_import_is_not_eager(self):
        graph = project_for(FIXTURES / "cyclepkg").imports
        lazy = [
            e
            for e in graph.internal_edges()
            if e.src == "gamma" and e.dst == "alpha"
        ]
        assert lazy and not lazy[0].eager
        assert all(
            e.src != "gamma" for e in graph.internal_edges(eager_only=True)
        )

    def test_resolve_symbol_through_reexport(self):
        graph = project_for(FIXTURES / "registrypkg").imports
        # The root __init__ re-exports solve_foo from baselines.foo.
        assert graph.resolve_symbol("", "solve_foo") == (
            "def",
            "baselines.foo",
            "solve_foo",
        )

    def test_as_dict_schema(self):
        payload = project_for(FIXTURES / "cyclepkg").imports.as_dict()
        assert payload["kind"] == "imports"
        assert set(payload["modules"]) == {"alpha", "beta", "gamma"}
        edge = payload["edges"][0]
        assert {"src", "dst", "line", "eager", "external", "names"} <= set(
            edge
        )


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_registry_edges_reach_solvers(self):
        calls = project_for(FIXTURES / "registrypkg").calls
        targets = {e.callee for e in calls.edges if e.caller == SOLVERS_NODE}
        assert "baselines.foo.solve_foo" in targets

    def test_checkpoint_reaching_is_transitive(self):
        calls = project_for(FIXTURES / "registrypkg").calls
        reaching = calls.checkpoint_reaching()
        # _scan checkpoints lexically; solve_foo only through the call.
        assert "baselines.foo._scan" in reaching
        assert "baselines.foo.solve_foo" in reaching

    def test_path_between_names_the_chain(self):
        calls = project_for(FIXTURES / "registrypkg").calls
        path = calls.path_between(
            "baselines.foo.solve_foo", "baselines.foo._scan"
        )
        assert path == ["baselines.foo.solve_foo", "baselines.foo._scan"]


# ----------------------------------------------------------------------
# Effect inference
# ----------------------------------------------------------------------
class TestEffects:
    def test_direct_mutation_recorded(self):
        effects = project_for(FIXTURES / "effectpkg").effects
        rooted = effects.rooted_in("mut.poke", "param:box", direct_only=True)
        assert rooted and rooted[0].kind == "mutate-call"

    def test_fixpoint_propagates_two_levels(self):
        effects = project_for(FIXTURES / "effectpkg").effects
        # outer -> relay -> poke: the summary must surface the mutation
        # rebased onto outer's own parameter.
        assert effects.rooted_in("mut.outer", "param:box")
        assert effects.rooted_in("mut.relay", "param:box")

    def test_pure_reader_has_no_mutations(self):
        effects = project_for(FIXTURES / "effectpkg").effects
        assert effects.mutations("mut.reader") == []


# ----------------------------------------------------------------------
# Layering
# ----------------------------------------------------------------------
class TestLayering:
    def test_rank_specificity(self):
        assert rank_of("network.graph") == rank_of("network")
        assert rank_of("obs.profile") > rank_of("obs")
        assert rank_of("cli") > rank_of("core")

    def test_layer_table_lists_every_prefix(self):
        prefixes = [prefix for prefix, _ in layer_table()]
        assert "network" in prefixes and "analysis" in prefixes

    def test_fixture_trees_are_layer_clean(self):
        for name in ("cyclepkg", "registrypkg", "effectpkg"):
            graph = project_for(FIXTURES / name).imports
            violations = [
                v
                for v in check_layering(graph)
                if v.kind != "cycle"
            ]
            assert violations == [], (name, violations)


# ----------------------------------------------------------------------
# REP101 -- budget reachability (interprocedural)
# ----------------------------------------------------------------------
class TestRep101Interprocedural:
    def test_transitive_checkpoint_is_compliant(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "runtime/budget.py": """
                    def checkpoint():
                        pass
                """,
                "network/kern.py": """
                    from runtime.budget import checkpoint

                    def run_kernel(item):
                        checkpoint()
                        return item
                """,
                "network/hot.py": """
                    from network.kern import run_kernel

                    def sweep(items):
                        total = 0
                        for item in items:
                            total += run_kernel(item)
                        return total
                """,
            },
        )
        assert findings_for(result, "REP101") == []

    def test_unreaching_call_chain_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "network/kern.py": """
                    def run_kernel(item):
                        return item
                """,
                "network/hot.py": """
                    from network.kern import run_kernel

                    def sweep(items):
                        total = 0
                        for item in items:
                            total += run_kernel(item)
                        return total
                """,
            },
        )
        hits = findings_for(result, "REP101")
        assert [f.symbol for f in hits] == ["sweep"]
        assert hits[0].severity == "error"


# ----------------------------------------------------------------------
# REP102 -- architecture layering
# ----------------------------------------------------------------------
class TestRep102Layering:
    def test_upward_import_fires_with_chain(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/thing.py": "VALUE = 1\n",
                "network/x.py": "from core.thing import VALUE\n",
            },
        )
        hits = findings_for(result, "REP102")
        assert len(hits) == 1
        assert hits[0].path == "network/x.py"
        assert "network.x" in hits[0].symbol
        assert "core.thing" in hits[0].symbol

    def test_downward_import_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "network/x.py": "VALUE = 1\n",
                "core/thing.py": "from network.x import VALUE\n",
            },
        )
        assert findings_for(result, "REP102") == []

    def test_lazy_upward_import_tolerated(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/thing.py": "VALUE = 1\n",
                "network/x.py": """
                    def peek():
                        from core.thing import VALUE

                        return VALUE
                """,
            },
        )
        assert findings_for(result, "REP102") == []

    def test_analysis_must_stay_stdlib_only(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "analysis/probe.py": "import numpy as np\n",
            },
        )
        hits = findings_for(result, "REP102")
        assert len(hits) == 1
        assert "stdlib" in hits[0].message

    def test_eager_cycle_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "network/a.py": "from network.b import B\nA = 1\n",
                "network/b.py": "from network.a import A\nB = 2\n",
            },
        )
        hits = findings_for(result, "REP102")
        assert len(hits) == 1
        assert "cycle" in hits[0].message


# ----------------------------------------------------------------------
# REP103 -- shared-state safety
# ----------------------------------------------------------------------
_REP103_FILES = {
    "network/graph.py": """
        class Network:
            def __init__(self):
                self._memo = None

            def warm(self):
                self._memo = 1
    """,
    "network/par.py": """
        from multiprocessing import Pool

        from network.graph import Network

        def _worker(network: Network):
            network.warm()

        def run(network: Network):
            with Pool(2, initializer=_worker, initargs=(network,)) as pool:
                return pool
    """,
}


class TestRep103SharedState:
    def test_worker_reachable_mutation_fires(self, tmp_path):
        result = run_lint(tmp_path, _REP103_FILES)
        hits = findings_for(result, "REP103")
        assert len(hits) == 1
        assert hits[0].path == "network/graph.py"
        assert "Network.warm" in hits[0].message
        assert "_worker" in hits[0].message  # entry chain is named

    def test_constructor_self_writes_exempt(self, tmp_path):
        # __init__'s self-write never fires: the instance is fresh.
        result = run_lint(tmp_path, _REP103_FILES)
        assert all(
            "__init__" not in f.message
            for f in findings_for(result, "REP103")
        )

    def test_bare_suppression_is_ignored(self, tmp_path):
        files = dict(_REP103_FILES)
        files["network/graph.py"] = """
            class Network:
                def __init__(self):
                    self._memo = None

                def warm(self):
                    self._memo = 1  # reprolint: disable=REP103
        """
        result = run_lint(tmp_path, files)
        assert len(findings_for(result, "REP103")) == 1

    def test_justified_suppression_counts(self, tmp_path):
        files = dict(_REP103_FILES)
        files["network/graph.py"] = """
            class Network:
                def __init__(self):
                    self._memo = None

                def warm(self):
                    self._memo = 1  # reprolint: disable=REP103 -- fixture memo
        """
        result = run_lint(tmp_path, files)
        assert findings_for(result, "REP103") == []
        assert result.suppressed >= 1

    def test_unshared_class_ignored(self, tmp_path):
        files = {
            "network/par.py": textwrap.dedent(
                """
                from multiprocessing import Pool

                class Scratch:
                    def bump(self):
                        self.count = 1

                def _worker(scratch: Scratch):
                    scratch.bump()

                def run(scratch: Scratch):
                    with Pool(2, initializer=_worker) as pool:
                        return pool
                """
            )
        }
        result = run_lint(tmp_path, files)
        assert findings_for(result, "REP103") == []


# ----------------------------------------------------------------------
# REP104 -- dead exports
# ----------------------------------------------------------------------
class TestRep104DeadExports:
    def test_orphan_public_symbol_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/api.py": """
                    def used_one():
                        return 1

                    def orphan_xyzzy():
                        return 2
                """,
                "core/user.py": "from core.api import used_one\n",
            },
        )
        hits = findings_for(result, "REP104")
        assert [f.symbol for f in hits] == ["orphan_xyzzy"]

    def test_unimported_module_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/standalone.py": """
                    def nobody_calls_this():
                        return 1
                """,
            },
        )
        assert findings_for(result, "REP104") == []

    def test_private_symbols_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/api.py": """
                    def used_one():
                        return 1

                    def _private_helper():
                        return 2
                """,
                "core/user.py": "from core.api import used_one\n",
            },
        )
        assert findings_for(result, "REP104") == []

    def test_string_reference_counts_as_usage(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/api.py": """
                    def used_one():
                        return 1

                    def by_name():
                        return 2
                """,
                "core/user.py": """
                    from core import api

                    HOOK = "by_name"
                    used = api.used_one
                """,
            },
        )
        assert findings_for(result, "REP104") == []


# ----------------------------------------------------------------------
# Graph exports and the layer-table renderer
# ----------------------------------------------------------------------
class TestGraphExports:
    def test_imports_json_includes_layers(self):
        project = project_for(FIXTURES / "registrypkg")
        doc = json.loads(render_graph(project, "imports"))
        assert doc["kind"] == "imports"
        assert "layers" in doc
        assert doc["layers"]["runtime.budget"] == rank_of("runtime.budget")

    def test_calls_json_schema(self):
        project = project_for(FIXTURES / "registrypkg")
        doc = json.loads(render_graph(project, "calls"))
        assert doc["kind"] == "calls"
        assert any(
            e["caller"] == SOLVERS_NODE for e in doc["edges"]
        )

    def test_dot_outputs(self):
        project = project_for(FIXTURES / "cyclepkg")
        for which in GRAPH_KINDS:
            dot = render_graph(project, which, "dot")
            if which == "cfg":
                # One digraph per function, named by node id.
                assert dot.startswith('digraph "')
            else:
                assert dot.startswith(f"digraph {which}")
        assert "json" in GRAPH_FORMATS

    def test_cfg_json_schema_and_filter(self):
        project = project_for(FIXTURES / "cyclepkg")
        doc = json.loads(render_graph(project, "cfg"))
        assert doc["functions"], "cyclepkg defines functions"
        for func in doc["functions"]:
            blocks = {b["index"] for b in func["blocks"]}
            assert {func["entry"], func["exit"], func["raise_exit"]} <= blocks
            for edge in func["edges"]:
                assert edge["src"] in blocks and edge["dst"] in blocks
        one = doc["functions"][0]["name"]
        filtered = json.loads(
            render_graph(project, "cfg", function=one)
        )
        assert [f["name"] for f in filtered["functions"]] == [one]

    def test_layer_table_renders(self):
        table = render_layer_table()
        assert "network" in table
        assert "rank" in table

    def test_cli_graph_export(self, tmp_path, capsys):
        code = lint_main(
            [str(FIXTURES / "cyclepkg"), "--graph", "imports"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["modules"]) == {"alpha", "beta", "gamma"}

    def test_cli_graph_output_file(self, tmp_path, capsys):
        out = tmp_path / "calls.dot"
        code = lint_main(
            [
                str(FIXTURES / "registrypkg"),
                "--graph",
                "calls",
                "--graph-format",
                "dot",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.read_text().startswith("digraph calls")


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
class TestRatchetCheck:
    @staticmethod
    def _write(path: Path, findings: dict[str, int]) -> Path:
        path.write_text(json.dumps({"version": 1, "findings": findings}))
        return path

    def test_shrinking_is_ok(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"REP101:a.py:f": 2})
        new = self._write(tmp_path / "new.json", {"REP101:a.py:f": 1})
        assert ratchet_check(old, new) == []

    def test_new_key_fails(self, tmp_path):
        old = self._write(tmp_path / "old.json", {})
        new = self._write(tmp_path / "new.json", {"REP101:a.py:f": 1})
        violations = ratchet_check(old, new)
        assert violations and "new baseline entry" in violations[0]

    def test_grown_count_fails(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"REP101:a.py:f": 1})
        new = self._write(tmp_path / "new.json", {"REP101:a.py:f": 3})
        assert ratchet_check(old, new) == ["REP101:a.py:f: 1 -> 3"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {})
        new = self._write(tmp_path / "new.json", {"REP101:a.py:f": 1})
        ok = lint_main(
            [
                str(tmp_path),
                "--ratchet-check",
                str(new),
                "--baseline",
                str(old),
            ]
        )
        assert ok == 0
        bad = lint_main(
            [
                str(tmp_path),
                "--ratchet-check",
                str(old),
                "--baseline",
                str(new),
            ]
        )
        assert bad == 1


# ----------------------------------------------------------------------
# Self-checks over the real tree
# ----------------------------------------------------------------------
class TestRealTree:
    def test_layering_holds_with_zero_findings(self):
        project = project_for(default_root())
        assert check_layering(project.imports) == []

    def test_kernel_read_paths_reach_checkpoints(self):
        calls = project_for(default_root()).calls
        reaching = calls.checkpoint_reaching()
        # The cache read path is budget-compliant interprocedurally:
        # lengths -> workspace run -> per-pop checkpoint.
        assert "network.distcache.DistanceCache.lengths" in reaching
        assert "network.dijkstra.distance_matrix" in reaching

    def test_solvers_registry_feeds_call_graph(self):
        calls = project_for(default_root()).calls
        targets = {e.callee for e in calls.edges if e.caller == SOLVERS_NODE}
        assert targets, "SOLVERS registry produced no call edges"
