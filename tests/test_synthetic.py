"""Tests for the synthetic network generators (Section VII-B)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.datagen.synthetic import (
    clustered_network,
    clustered_points,
    connection_radius,
    geometric_network,
    uniform_network,
    uniform_points,
)


class TestRadius:
    def test_paper_formula(self):
        assert connection_radius(100, 2.0, side=1000.0) == pytest.approx(
            2.0 * 1000.0 / 10.0
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            connection_radius(0, 1.0)
        with pytest.raises(ValueError):
            connection_radius(10, -1.0)

    def test_expected_degree_close_to_pi_alpha_squared(self):
        """Measured average degree ~ pi * alpha^2 on uniform data."""
        alpha = 1.5
        g = uniform_network(1500, alpha, seed=0)
        expected = math.pi * alpha * alpha
        measured = g.stats().avg_degree
        assert expected * 0.75 < measured < expected * 1.25


class TestPoints:
    def test_uniform_points_in_square(self):
        rng = np.random.default_rng(0)
        pts = uniform_points(500, rng, side=1000.0)
        assert pts.shape == (500, 2)
        assert pts.min() >= 0.0
        assert pts.max() <= 1000.0

    def test_clustered_points_counts(self):
        rng = np.random.default_rng(1)
        pts, centers = clustered_points(103, 10, rng)
        assert pts.shape == (103, 2)
        assert centers.shape == (10, 2)

    def test_clustered_points_clipped_to_square(self):
        rng = np.random.default_rng(2)
        pts, _ = clustered_points(500, 3, rng, side=100.0)
        assert pts.min() >= 0.0
        assert pts.max() <= 100.0

    def test_clustered_more_concentrated_than_uniform(self):
        """Mean nearest-neighbor distance shrinks under clustering."""
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        uni = uniform_points(400, rng1)
        clu, _ = clustered_points(400, 40, rng2)

        def mean_nn(pts):
            d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
            np.fill_diagonal(d2, np.inf)
            return np.sqrt(d2.min(axis=1)).mean()

        assert mean_nn(clu) < mean_nn(uni)

    def test_invalid_cluster_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            clustered_points(5, 10, rng)
        with pytest.raises(ValueError):
            clustered_points(5, 0, rng)


class TestGeometricNetwork:
    def test_edges_within_radius_only(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        g = geometric_network(pts, radius=1.5)
        assert sorted((u, v) for u, v, _ in g.edges()) == [(0, 1)]

    def test_extra_edges_added(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        g = geometric_network(pts, radius=1.5, extra_edges=[(0, 2)])
        assert sorted((u, v) for u, v, _ in g.edges()) == [(0, 1), (0, 2)]

    def test_extra_edges_no_duplicates(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        g = geometric_network(pts, radius=1.5, extra_edges=[(0, 1), (1, 0)])
        assert g.n_edges == 1

    def test_coincident_points_get_positive_weight(self):
        pts = np.zeros((2, 2))
        g = geometric_network(pts, radius=1.0)
        assert all(w > 0 for _, _, w in g.edges())


class TestNetworks:
    def test_uniform_network_deterministic(self):
        a = uniform_network(200, 1.5, seed=4)
        b = uniform_network(200, 1.5, seed=4)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_clustered_network_has_center_clique(self):
        n, n_clusters = 150, 5
        g = clustered_network(n, n_clusters, alpha=1.0, seed=0)
        assert g.n_nodes == n + n_clusters
        # Every pair of center nodes (appended last) must be connected.
        centers = set(range(n, n + n_clusters))
        center_edges = {
            (u, v)
            for u, v, _ in g.edges()
            if u in centers and v in centers
        }
        assert len(center_edges) == n_clusters * (n_clusters - 1) // 2

    def test_sparser_alpha_fragments_network(self):
        dense = uniform_network(400, 2.0, seed=5)
        sparse = uniform_network(400, 0.8, seed=5)
        assert sparse.stats().n_components > dense.stats().n_components
