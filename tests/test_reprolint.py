"""Tests for reprolint (:mod:`repro.analysis`): rules, suppressions,
baseline ratchet, JSON schema, CLI exit codes, and the self-check that
the repo's own source tree lints clean."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    default_root,
    load_baseline,
    save_baseline,
)
from repro.analysis.lintcli import main as lint_main
from repro.analysis.rules import RULES, default_rules

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_BASELINE = REPO_ROOT / "reprolint-baseline.json"

#: A registry fixture whose names the clean fixtures below all use.
REGISTRY_SRC = """
    COUNTERS = frozenset({"good.counter"})
    GAUGES = frozenset({"good.gauge"})
    TIMERS = frozenset({"good.timer"})
"""

#: Uses every registry name once, so REP001's dead-entry check is happy.
REGISTRY_USER_SRC = """
    def touch(reg):
        reg.counter("good.counter").add()
        reg.gauge("good.gauge").set(1)
        with reg.timer("good.timer").time():
            pass
"""


def run_lint(tmp_path, files, baseline=None, rules=None):
    """Write ``files`` (rel-path -> source) under ``tmp_path`` and lint."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return LintEngine(tmp_path, rules=rules).run(baseline)


def with_registry(files):
    """Add the REP001 registry + a user of all its names to ``files``."""
    return {
        "obs/names.py": REGISTRY_SRC,
        "obs/used.py": REGISTRY_USER_SRC,
        **files,
    }


def rule_ids(result):
    return [f.rule for f in result.findings]


class TestRep001ObsNames:
    def test_clean_roundtrip(self, tmp_path):
        result = run_lint(tmp_path, with_registry({}))
        assert result.ok
        assert result.findings == []

    def test_unregistered_name_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "flow/x.py": """
                        def f(reg):
                            reg.counter("nope.missing").add()
                    """
                }
            ),
        )
        assert not result.ok
        (finding,) = result.findings
        assert finding.rule == "REP001"
        assert finding.symbol == "nope.missing"
        assert finding.path == "flow/x.py"

    def test_kind_mismatch_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "flow/x.py": """
                        def f(reg):
                            reg.gauge("good.counter").set(1)
                    """
                }
            ),
        )
        assert [f.rule for f in result.findings] == ["REP001"]
        assert "registered as a counter" in result.findings[0].message

    def test_dead_registry_entry_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "obs/names.py": """
                    COUNTERS = frozenset({"never.used"})
                    GAUGES = frozenset()
                    TIMERS = frozenset()
                """
            },
        )
        (finding,) = result.findings
        assert finding.rule == "REP001"
        assert finding.path == "obs/names.py"
        assert "dead registry entry" in finding.message

    def test_module_constant_resolves(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "flow/x.py": """
                        NAME = "constant.miss"

                        def f(reg):
                            reg.counter(NAME).add()
                    """
                }
            ),
        )
        assert [f.symbol for f in result.findings] == ["constant.miss"]

    def test_counterblock_args_checked(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "flow/x.py": """
                        import metrics

                        BLOCK = metrics.CounterBlock("good.counter", "bad.block")
                    """
                }
            ),
        )
        assert [f.symbol for f in result.findings] == ["bad.block"]

    def test_line_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "flow/x.py": """
                        def f(reg):
                            reg.counter("nope.x").add()  # reprolint: disable=REP001
                    """
                }
            ),
        )
        assert result.ok
        assert result.suppressed == 1


class TestRep002SolverRegistration:
    CLEAN = {
        "__init__.py": """
            from baselines.foo import solve_foo

            SOLVERS = {"foo": solve_foo}
        """,
        "baselines/foo.py": """
            from runtime.options import solver_api

            @solver_api("foo", uses=frozenset())
            def solve_foo(instance):
                return None
        """,
    }

    def test_clean(self, tmp_path):
        result = run_lint(tmp_path, with_registry(self.CLEAN))
        assert result.ok

    def test_missing_decorator_fires(self, tmp_path):
        files = dict(self.CLEAN)
        files["baselines/foo.py"] = """
            def solve_foo(instance):
                return None
        """
        result = run_lint(tmp_path, with_registry(files))
        assert "REP002" in rule_ids(result)
        assert any("solver_api" in f.message for f in result.findings)

    def test_unreachable_from_solvers_fires(self, tmp_path):
        files = dict(self.CLEAN)
        files["baselines/bar.py"] = """
            from runtime.options import solver_api

            @solver_api("bar", uses=frozenset())
            def solve_bar(instance):
                return None
        """
        result = run_lint(tmp_path, with_registry(files))
        hits = [f for f in result.findings if f.rule == "REP002"]
        assert [f.symbol for f in hits] == ["solve_bar"]
        assert "not reachable from" in hits[0].message

    def test_outside_solver_dirs_ignored(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "io/misc.py": """
                        def solve_nothing():
                            return None
                    """
                }
            ),
        )
        assert result.ok


class TestRep003WallClock:
    def test_time_time_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        import time

                        def f():
                            return time.time()
                    """
                }
            ),
        )
        assert rule_ids(result) == ["REP003"]

    def test_from_import_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        from time import monotonic
                    """
                }
            ),
        )
        assert rule_ids(result) == ["REP003"]

    def test_runtime_and_obs_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "runtime/x.py": """
                        import time

                        def f():
                            return time.time()
                    """,
                    "obs/x.py": """
                        import time

                        def f():
                            return time.monotonic()
                    """,
                }
            ),
        )
        assert result.ok

    def test_perf_counter_allowed(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        import time

                        def f():
                            return time.perf_counter()
                    """
                }
            ),
        )
        assert result.ok

    def test_file_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        # reprolint: disable=REP003
                        import time

                        def f():
                            return time.time()
                    """
                }
            ),
        )
        assert result.ok
        assert result.suppressed == 1


class TestRep004SeededRandomness:
    def test_import_random_fires(self, tmp_path):
        result = run_lint(
            tmp_path, with_registry({"core/x.py": "import random\n"})
        )
        assert rule_ids(result) == ["REP004"]

    def test_unseeded_default_rng_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        import numpy as np

                        def f():
                            return np.random.default_rng()
                    """
                }
            ),
        )
        assert rule_ids(result) == ["REP004"]

    def test_seeded_default_rng_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        import numpy as np

                        def f(seed):
                            return np.random.default_rng(seed)
                    """
                }
            ),
        )
        assert result.ok

    def test_faults_whitelisted(self, tmp_path):
        result = run_lint(
            tmp_path, with_registry({"runtime/faults.py": "import random\n"})
        )
        assert result.ok


class TestRep101BudgetReachability:
    def test_unchecked_hot_loop_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "network/hot.py": """
                        def sweep(items):
                            total = 0
                            for item in items:
                                total += item
                            return total
                    """
                }
            ),
        )
        assert rule_ids(result) == ["REP101"]
        assert result.findings[0].symbol == "sweep"
        assert result.findings[0].severity == "error"

    def test_checkpointed_loop_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "network/hot.py": """
                        from runtime.budget import checkpoint

                        def sweep(items):
                            total = 0
                            for item in items:
                                checkpoint()
                                total += item
                            return total
                    """
                }
            ),
        )
        assert result.ok

    def test_enclosing_scope_checkpoint_counts(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "network/hot.py": """
                        from runtime.budget import checkpoint

                        def outer(items):
                            checkpoint()

                            def inner():
                                for item in items:
                                    pass

                            return inner
                    """
                }
            ),
        )
        assert result.ok

    def test_constant_range_loop_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "network/hot.py": """
                        def f():
                            total = 0
                            for i in range(10):
                                total += i
                            return total
                    """
                }
            ),
        )
        assert result.ok

    def test_cold_modules_ignored(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "io/cold.py": """
                        def sweep(items):
                            for item in items:
                                pass
                    """
                }
            ),
        )
        assert result.ok

    def test_def_line_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "network/hot.py": """
                        def sweep(items):  # reprolint: disable=REP101
                            for item in items:
                                pass
                    """
                }
            ),
        )
        assert result.ok
        assert result.suppressed == 1


class TestRep006MutableDefaultsBareExcept:
    def test_mutable_default_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        def f(acc=[]):
                            return acc
                    """
                }
            ),
        )
        assert rule_ids(result) == ["REP006"]

    def test_bare_except_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        def f():
                            try:
                                return 1
                            except:
                                return 2
                    """
                }
            ),
        )
        assert rule_ids(result) == ["REP006"]
        assert result.findings[0].symbol == "bare-except"

    def test_none_default_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        def f(acc=None):
                            if acc is None:
                                acc = []
                            return acc
                    """
                }
            ),
        )
        assert result.ok


class TestEngineMechanics:
    def test_syntax_error_yields_rep000(self, tmp_path):
        result = run_lint(
            tmp_path, with_registry({"core/broken.py": "def f(:\n"})
        )
        assert "REP000" in rule_ids(result)

    def test_disable_all(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/x.py": """
                        # reprolint: disable=all
                        import random
                        import time

                        def f():
                            return time.time()
                    """
                }
            ),
        )
        assert result.ok
        assert result.suppressed == 2

    def test_findings_sorted_and_stable(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry(
                {
                    "core/b.py": "import random\n",
                    "core/a.py": "import random\n",
                }
            ),
        )
        assert [f.path for f in result.findings] == ["core/a.py", "core/b.py"]


class TestBaselineRatchet:
    def test_baselined_finding_passes(self, tmp_path):
        files = with_registry({"core/x.py": "import random\n"})
        result = run_lint(
            tmp_path, files, baseline={"REP004:core/x.py:import-random": 1}
        )
        assert result.ok
        assert len(result.baselined_findings) == 1
        assert result.stale_baseline == []

    def test_stale_entry_reported(self, tmp_path):
        result = run_lint(
            tmp_path,
            with_registry({}),
            baseline={"REP004:core/gone.py:import-random": 1},
        )
        assert result.ok
        assert result.stale_baseline == ["REP004:core/gone.py:import-random"]

    def test_count_overflow_fails(self, tmp_path):
        files = with_registry(
            {"core/x.py": "import random\nimport random.sub\n"}
        )
        result = run_lint(
            tmp_path, files, baseline={"REP004:core/x.py:import-random": 1}
        )
        assert not result.ok
        assert len(result.baselined_findings) == 1
        assert len(result.new_findings) == 1

    def test_save_load_roundtrip(self, tmp_path):
        files = with_registry({"core/x.py": "import random\n"})
        result = run_lint(tmp_path, files)
        target = tmp_path / "baseline.json"
        save_baseline(target, result.findings)
        loaded = load_baseline(target)
        assert loaded == {"REP004:core/x.py:import-random": 1}
        again = run_lint(tmp_path, files, baseline=loaded)
        assert again.ok

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}


class TestJsonSchema:
    def test_report_schema_roundtrip(self, tmp_path):
        result = run_lint(
            tmp_path, with_registry({"core/x.py": "import random\n"})
        )
        doc = json.loads(result.to_json())
        assert doc["version"] == 1
        assert doc["tool"] == "reprolint"
        assert set(doc["summary"]) == {
            "files",
            "findings",
            "baselined",
            "suppressed",
            "stale_baseline",
            "relinted",
            "ok",
        }
        # Without a cache every scanned file counts as re-linted.
        assert doc["summary"]["relinted"] == doc["summary"]["files"]
        assert doc["summary"]["ok"] is False
        (finding,) = doc["findings"]
        assert set(finding) == {
            "rule",
            "severity",
            "path",
            "line",
            "col",
            "symbol",
            "message",
            "hint",
            "baselined",
            "key",
        }
        assert finding["key"] == "REP004:core/x.py:import-random"


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "obs").mkdir()
        (tmp_path / "obs" / "names.py").write_text(
            textwrap.dedent(REGISTRY_SRC)
        )
        (tmp_path / "obs" / "used.py").write_text(
            textwrap.dedent(REGISTRY_USER_SRC)
        )
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0
        assert "-- ok" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "x.py").write_text("import random\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1

    def test_exit_two_on_bad_rule(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--rules", "NOPE"]) == 2

    def test_json_output_file(self, tmp_path, capsys):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "x.py").write_text("import random\n")
        out = tmp_path / "report.json"
        code = lint_main(
            [
                str(tmp_path),
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(out),
            ]
        )
        assert code == 1
        doc = json.loads(out.read_text())
        assert doc["summary"]["findings"] == 1

    def test_rules_filter(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "x.py").write_text("import random\n")
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--rules", "REP003"])
            == 0
        )

    def test_strict_fails_on_stale(self, tmp_path, capsys):
        baseline = tmp_path / "stale.json"
        baseline.write_text(
            json.dumps(
                {"version": 1, "findings": {"REP004:gone.py:import-random": 1}}
            )
        )
        (tmp_path / "keep.py").write_text("x = 1\n")
        assert (
            lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        )
        assert (
            lint_main(
                [str(tmp_path), "--baseline", str(baseline), "--strict"]
            )
            == 1
        )

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in RULES:
            assert cls.id in out


class TestSelfCheck:
    """The repo's own source tree must lint clean against its baseline."""

    def test_own_tree_is_clean(self):
        baseline = (
            load_baseline(REPO_BASELINE) if REPO_BASELINE.exists() else None
        )
        result = LintEngine(default_root()).run(baseline)
        assert result.ok, "\n" + result.format_text()

    def test_no_stale_baseline_entries(self):
        if not REPO_BASELINE.exists():
            pytest.skip("no committed baseline")
        result = LintEngine(default_root()).run(load_baseline(REPO_BASELINE))
        assert result.stale_baseline == [], (
            "baseline entries with no matching finding -- run "
            "`repro lint --update-baseline` to ratchet down: "
            f"{result.stale_baseline}"
        )

    def test_every_rule_registered_and_distinct(self):
        ids = [r.id for r in default_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids)) == 17
        # The path-sensitive and cost tiers ride the same registry.
        assert {"REP105", "REP106", "REP107", "REP108"} <= set(ids)
        assert {"REP109", "REP110", "REP111", "REP112"} <= set(ids)
