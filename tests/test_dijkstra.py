"""Tests for Dijkstra variants, cross-checked against networkx."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.network.dijkstra import (
    distance_matrix,
    eccentricity_bound,
    multi_source_lengths,
    nearest_of,
    shortest_path,
    shortest_path_lengths,
)
from repro.network.graph import Network
from tests.conftest import (
    build_line_network,
    build_random_network,
    build_two_component_network,
)


def reference_lengths(network: Network, source: int) -> dict[int, float]:
    return nx.single_source_dijkstra_path_length(
        network.to_networkx(), source, weight="weight"
    )


class TestSingleSource:
    def test_line_distances(self):
        g = build_line_network(5)
        result = shortest_path_lengths(g, 0)
        assert list(result.dist) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(5):
            g = build_random_network(50, seed=seed)
            ref = reference_lengths(g, 0)
            result = shortest_path_lengths(g, 0)
            for v in range(g.n_nodes):
                if v in ref:
                    assert result.dist[v] == pytest.approx(ref[v])
                else:
                    assert math.isinf(result.dist[v])

    def test_unreachable_is_inf(self):
        g = build_two_component_network()
        result = shortest_path_lengths(g, 0)
        assert math.isinf(result.dist[4])
        assert np.isfinite(result.dist[2])

    def test_settled_in_distance_order(self):
        g = build_random_network(40, seed=3)
        result = shortest_path_lengths(g, 0)
        dists = [result.dist[v] for v in result.settled]
        assert dists == sorted(dists)

    def test_invalid_source(self):
        g = build_line_network(3)
        with pytest.raises(GraphError):
            shortest_path_lengths(g, 99)

    def test_radius_bound(self):
        g = build_line_network(10)
        result = shortest_path_lengths(g, 0, radius=3.0)
        assert np.isfinite(result.dist[3])
        assert math.isinf(result.dist[5])

    def test_targets_early_exit(self):
        g = build_line_network(100)
        result = shortest_path_lengths(g, 0, targets=[3])
        assert result.dist[3] == pytest.approx(3.0)
        # The search must not have settled the far end.
        assert len(result.settled) < 100


class TestPathRecovery:
    def test_path_on_line(self):
        g = build_line_network(5)
        dist, path = shortest_path(g, 0, 4)
        assert dist == pytest.approx(4.0)
        assert path == [0, 1, 2, 3, 4]

    def test_path_matches_networkx(self):
        g = build_random_network(40, seed=7)
        dist, path = shortest_path(g, 0, 20)
        ref = nx.dijkstra_path_length(g.to_networkx(), 0, 20)
        assert dist == pytest.approx(ref)
        # Path must be contiguous and have matching length.
        total = 0.0
        nxg = g.to_networkx()
        for u, v in zip(path, path[1:], strict=False):
            total += nxg[u][v]["weight"]
        assert total == pytest.approx(dist)

    def test_no_path_raises(self):
        g = build_two_component_network()
        with pytest.raises(GraphError, match="no path"):
            shortest_path(g, 0, 5)

    def test_path_to_unreached_raises(self):
        g = build_two_component_network()
        result = shortest_path_lengths(g, 0)
        with pytest.raises(GraphError):
            result.path_to(4)


class TestMultiSource:
    def test_nearest_source_distances(self):
        g = build_line_network(7)
        result = multi_source_lengths(g, [0, 6])
        assert result.dist[3] == pytest.approx(3.0)
        assert result.dist[5] == pytest.approx(1.0)

    def test_empty_sources(self):
        g = build_line_network(3)
        result = multi_source_lengths(g, [])
        assert all(math.isinf(d) for d in result.dist)

    def test_matches_min_over_single_sources(self):
        g = build_random_network(40, seed=11)
        sources = [0, 5, 17]
        combined = multi_source_lengths(g, sources).dist
        singles = [shortest_path_lengths(g, s).dist for s in sources]
        expected = np.minimum.reduce(singles)
        assert np.allclose(
            combined[np.isfinite(expected)], expected[np.isfinite(expected)]
        )


class TestDistanceMatrix:
    def test_matrix_entries(self):
        g = build_line_network(5)
        mat = distance_matrix(g, [0, 4], [1, 3])
        assert mat[0, 0] == pytest.approx(1.0)
        assert mat[0, 1] == pytest.approx(3.0)
        assert mat[1, 0] == pytest.approx(3.0)
        assert mat[1, 1] == pytest.approx(1.0)

    def test_unreachable_inf(self):
        g = build_two_component_network()
        mat = distance_matrix(g, [0], [4])
        assert math.isinf(mat[0, 0])

    def test_matches_networkx(self):
        g = build_random_network(30, seed=2)
        sources, targets = [1, 2], [10, 20, 25]
        mat = distance_matrix(g, sources, targets)
        for i, s in enumerate(sources):
            ref = reference_lengths(g, s)
            for j, t in enumerate(targets):
                if t in ref:
                    assert mat[i, j] == pytest.approx(ref[t])
                else:
                    assert math.isinf(mat[i, j])


class TestNearestOf:
    def test_picks_nearest(self):
        g = build_line_network(10)
        assert nearest_of(g, 0, [3, 7]) == (3, pytest.approx(3.0))
        assert nearest_of(g, 9, [3, 7]) == (7, pytest.approx(2.0))

    def test_source_in_targets(self):
        g = build_line_network(5)
        assert nearest_of(g, 2, [2, 4]) == (2, 0.0)

    def test_unreachable_returns_none(self):
        g = build_two_component_network()
        assert nearest_of(g, 0, [4]) is None

    def test_empty_targets(self):
        g = build_line_network(3)
        assert nearest_of(g, 0, []) is None


class TestEccentricity:
    def test_line_eccentricity(self):
        g = build_line_network(5)
        assert eccentricity_bound(g, 0) == pytest.approx(4.0)

    def test_ignores_unreachable(self):
        g = build_two_component_network()
        bound = eccentricity_bound(g, 0)
        assert np.isfinite(bound)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), source=st.integers(0, 24))
def test_property_dijkstra_matches_networkx(seed, source):
    """Single-source distances agree with networkx on random graphs."""
    g = build_random_network(25, seed=seed % 50)
    ref = reference_lengths(g, source)
    result = shortest_path_lengths(g, source)
    for v in range(g.n_nodes):
        if v in ref:
            assert abs(result.dist[v] - ref[v]) < 1e-9
        else:
            assert math.isinf(result.dist[v])
