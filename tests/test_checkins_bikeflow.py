"""Tests for the check-in and bike-flow demand synthesis pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.bikeflow import (
    bike_demand_distribution,
    node_divergence,
    simulate_hourly_flows,
)
from repro.datagen.checkins import occupancy_customer_distribution, synth_occupancies
from tests.conftest import (
    build_grid_network,
    build_line_network,
    build_two_component_network,
)


class TestOccupancies:
    def test_mean_and_positivity(self):
        rng = np.random.default_rng(0)
        occ = synth_occupancies(500, rng, mean=25.0)
        assert occ.shape == (500,)
        assert (occ > 0).all()
        assert occ.mean() == pytest.approx(25.0)

    def test_heavy_tail(self):
        rng = np.random.default_rng(1)
        occ = synth_occupancies(2000, rng, sigma=1.2)
        assert occ.max() > 5 * np.median(occ)


class TestCheckinDistribution:
    def test_mass_conserved(self):
        g = build_grid_network(6, 6)
        venues = [0, 17, 35]
        occ = np.array([10.0, 20.0, 30.0])
        weights = occupancy_customer_distribution(g, venues, occ)
        assert weights.sum() == pytest.approx(occ.sum(), rel=1e-6)
        assert (weights >= 0).all()

    def test_unreachable_nodes_zero(self):
        g = build_two_component_network()
        weights = occupancy_customer_distribution(g, [0], np.array([12.0]))
        assert weights[3:].sum() == 0.0
        assert weights[:3].sum() == pytest.approx(12.0)

    def test_omega_extremes(self):
        g = build_grid_network(5, 5)
        venues = [0, 24]
        occ = np.array([10.0, 10.0])
        for omega in (0.0, 0.5, 1.0):
            weights = occupancy_customer_distribution(
                g, venues, occ, omega=omega
            )
            assert weights.sum() == pytest.approx(20.0, rel=1e-6)

    def test_invalid_omega(self):
        g = build_grid_network(3, 3)
        with pytest.raises(ValueError):
            occupancy_customer_distribution(
                g, [0], np.array([1.0]), omega=1.5
            )

    def test_misaligned_inputs(self):
        g = build_grid_network(3, 3)
        with pytest.raises(ValueError):
            occupancy_customer_distribution(g, [0, 1], np.array([1.0]))

    def test_popular_neighbor_attracts_mass(self):
        """With omega=1, sectors toward high-occupancy neighbors get more."""
        g = build_line_network(30)
        venues = [0, 15, 29]
        occ = np.array([1.0, 10.0, 100.0])
        weights = occupancy_customer_distribution(g, venues, occ, omega=1.0)
        cell_mid = slice(8, 23)
        mass_toward_right = weights[15:23].sum()
        mass_toward_left = weights[8:15].sum()
        assert mass_toward_right >= mass_toward_left


class TestBikeFlow:
    def test_flow_shape(self):
        g = build_grid_network(6, 6)
        rng = np.random.default_rng(0)
        flows = simulate_hourly_flows(g, rng, hours=24)
        assert flows.shape == (24, g.n_edges)

    def test_commute_reversal(self):
        """Morning and evening flows point in opposite directions."""
        g = build_grid_network(8, 8)
        rng = np.random.default_rng(1)
        flows = simulate_hourly_flows(g, rng, noise=0.0)
        morning, evening = flows[8], flows[17]
        corr = np.corrcoef(morning, evening)[0, 1]
        assert corr < -0.5

    def test_divergence_conserves_total(self):
        """Sum of divergences is zero: every departure arrives somewhere."""
        g = build_grid_network(5, 5)
        rng = np.random.default_rng(2)
        flows = simulate_hourly_flows(g, rng)
        for h in (0, 8, 17):
            div = node_divergence(g, flows[h])
            assert div.sum() == pytest.approx(0.0, abs=1e-9)

    def test_divergence_simple_edge(self):
        g = build_line_network(3)
        div = node_divergence(g, np.array([2.0, -1.0]))
        # Edge 0->1 carries +2 (into node 1), edge 1->2 carries -1
        # (into node 1 as well).
        assert div[0] == pytest.approx(-2.0)
        assert div[1] == pytest.approx(3.0)
        assert div[2] == pytest.approx(-1.0)

    def test_demand_distribution_normalized(self):
        g = build_grid_network(7, 7)
        rng = np.random.default_rng(3)
        flows = simulate_hourly_flows(g, rng)
        demand = bike_demand_distribution(g, flows)
        assert demand.sum() == pytest.approx(1.0)
        assert (demand >= 0).all()

    def test_zero_flow_rejected(self):
        g = build_grid_network(3, 3)
        flows = np.zeros((24, g.n_edges))
        with pytest.raises(ValueError):
            bike_demand_distribution(g, flows)

    def test_center_busier_than_periphery(self):
        """Commute flows make central nodes higher-demand on average."""
        g = build_grid_network(9, 9)
        rng = np.random.default_rng(4)
        flows = simulate_hourly_flows(g, rng, noise=0.05)
        demand = bike_demand_distribution(g, flows)
        coords = g.coords
        center = coords.mean(axis=0)
        dist = np.hypot(*(coords - center).T)
        near = demand[dist <= np.median(dist)].mean()
        far = demand[dist > np.median(dist)].mean()
        assert near > far
