"""Tests for the SSPA matcher: optimality, rewiring, pruning thresholds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.errors import MatchingError
from repro.flow.bipartite import BipartiteState
from repro.flow.sspa import ThresholdRule, assign_all, find_pair
from repro.network.dijkstra import distance_matrix
from repro.network.graph import Network
from tests.conftest import (
    build_line_network,
    build_random_network,
    build_two_component_network,
)


def hungarian_reference(network, customers, facilities, capacities) -> float:
    """Optimal assignment cost by capacity expansion + Hungarian."""
    if sum(capacities) < len(customers):
        # Rectangular LSA would silently drop customers.
        return float("inf")
    mat = distance_matrix(network, customers, facilities)
    cols = []
    for j, cap in enumerate(capacities):
        for _ in range(cap):
            cols.append(mat[:, j])
    expanded = np.array(cols).T
    big = 1e9
    filled = np.where(np.isfinite(expanded), expanded, big)
    rows, col_idx = linear_sum_assignment(filled)
    total = filled[rows, col_idx].sum()
    return float(total) if total < big / 2 else float("inf")


class TestAssignAll:
    def test_simple_line(self):
        g = build_line_network(10)
        result = assign_all(g, [1, 8], [0, 9], [1, 1])
        assert result.cost == pytest.approx(2.0)
        assert result.assignment == [0, 1]

    def test_capacity_forces_split(self):
        g = build_line_network(10)
        # Both customers closest to facility 0, but it can take only one.
        result = assign_all(g, [1, 2], [0, 9], [1, 5])
        assert sorted(result.assignment) == [0, 1]
        assert result.cost == pytest.approx(min(1 + 7, 2 + 8))

    def test_matches_hungarian_on_random_instances(self):
        for seed in range(20):
            g = build_random_network(35, seed=seed)
            rng = np.random.default_rng(seed + 99)
            customers = [int(v) for v in rng.choice(35, size=7, replace=True)]
            facilities = sorted(
                int(v) for v in rng.choice(35, size=9, replace=False)
            )
            capacities = [int(c) for c in rng.integers(1, 4, size=9)]
            ref = hungarian_reference(g, customers, facilities, capacities)
            if np.isinf(ref):
                with pytest.raises(MatchingError):
                    assign_all(g, customers, facilities, capacities)
                continue
            result = assign_all(g, customers, facilities, capacities)
            assert result.cost == pytest.approx(ref, rel=1e-9)

    def test_infeasible_capacity_raises(self):
        g = build_line_network(5)
        with pytest.raises(MatchingError):
            assign_all(g, [0, 1, 2], [4], [2])

    def test_unreachable_customer_raises(self):
        g = build_two_component_network()
        with pytest.raises(MatchingError):
            assign_all(g, [0, 3], [1], [5])

    def test_colocated_customer_and_facility(self):
        g = build_line_network(5)
        result = assign_all(g, [2], [2], [1])
        assert result.cost == pytest.approx(0.0)

    def test_duplicate_customers_share_stream(self):
        g = build_line_network(10)
        result = assign_all(g, [5, 5, 5], [4, 6, 0], [1, 1, 1])
        assert result.cost == pytest.approx(1 + 1 + 5)
        assert sorted(result.assignment) == [0, 1, 2]


class TestRewiring:
    def test_rewiring_beats_greedy(self):
        """The Section IV-B phenomenon: SSPA rewires, greedy does not.

        Customer A sits near facility X; customer B can reach X cheaply
        but its alternative is expensive, while A has a cheap alternative
        Y.  Greedy (A first) locks X and forces B onto the expensive
        path; SSPA reassigns A to Y.
        """
        #    X --1-- A --1.5-- Y
        #    |
        #    2
        #    |
        #    B --10-- Z(unused)
        coords = np.zeros((5, 2))
        g = Network(
            5,
            [
                (0, 1, 1.0),   # X - A
                (1, 2, 1.5),   # A - Y
                (0, 3, 2.0),   # X - B
                (3, 4, 10.0),  # B - Z
            ],
            coords=coords,
        )
        customers = [1, 3]  # A, B
        facilities = [0, 2]  # X, Y (Z intentionally not a candidate)
        result = assign_all(g, customers, facilities, [1, 1])
        # Optimal: A -> Y (1.5), B -> X (2.0).
        assert result.cost == pytest.approx(3.5)
        assert result.assignment == [1, 0]

    def test_incremental_order_independent(self):
        """Total cost equals Hungarian no matter the customer order."""
        g = build_random_network(30, seed=3)
        customers = [0, 5, 9, 14, 20]
        facilities = [2, 11, 25]
        capacities = [2, 2, 2]
        ref = hungarian_reference(g, customers, facilities, capacities)
        for perm_seed in range(5):
            rng = np.random.default_rng(perm_seed)
            order = rng.permutation(len(customers))
            state = BipartiteState(
                g,
                [customers[i] for i in order],
                facilities,
                capacities,
            )
            for i in range(state.m):
                find_pair(state, i)
            assert state.total_cost() == pytest.approx(ref, rel=1e-9)


class TestFindPair:
    def test_demand_two_distinct_facilities(self):
        g = build_line_network(10)
        state = BipartiteState(g, [5], [4, 6, 0], [1, 1, 1])
        find_pair(state, 0)
        find_pair(state, 0)
        assert state.assignment_count(0) == 2
        nodes = sorted(state.facility_nodes[j] for j in state.matched[0])
        assert nodes == [4, 6]

    def test_find_pair_raises_when_exhausted(self):
        g = build_line_network(10)
        state = BipartiteState(g, [5], [4], [1])
        find_pair(state, 0)
        with pytest.raises(MatchingError):
            find_pair(state, 0)

    def test_potentials_stay_nonnegative(self):
        g = build_random_network(30, seed=8)
        state = BipartiteState(
            g, [0, 4, 9, 13], [3, 17, 26], [2, 1, 1]
        )
        for i in range(4):
            find_pair(state, i)
            assert all(p >= -1e-9 for p in state.customer_potential)
            assert all(p >= -1e-9 for p in state.facility_potential)

    def test_lazy_materialization_prunes(self):
        """Far facilities should not be revealed when near ones suffice."""
        g = build_line_network(100)
        facilities = list(range(0, 100, 10))
        state = BipartiteState(g, [0], facilities, [1] * len(facilities))
        find_pair(state, 0)
        # Customer 0 matches its collocated facility; the pruning bound
        # must avoid revealing the whole candidate set.
        assert state.edges_materialized <= 3


class TestThresholdRules:
    def test_both_rules_reach_optimal_cost(self):
        for seed in range(10):
            g = build_random_network(30, seed=seed)
            rng = np.random.default_rng(seed)
            customers = [int(v) for v in rng.choice(30, size=6, replace=True)]
            facilities = sorted(
                int(v) for v in rng.choice(30, size=8, replace=False)
            )
            capacities = [int(c) for c in rng.integers(1, 4, size=8)]
            try:
                r1 = assign_all(
                    g, customers, facilities, capacities,
                    rule=ThresholdRule.THEOREM1,
                )
            except MatchingError:
                with pytest.raises(MatchingError):
                    assign_all(
                        g, customers, facilities, capacities,
                        rule=ThresholdRule.TAU_PRIME,
                    )
                continue
            r2 = assign_all(
                g, customers, facilities, capacities,
                rule=ThresholdRule.TAU_PRIME,
            )
            assert r1.cost == pytest.approx(r2.cost, rel=1e-9)

    def test_tau_prime_reveals_at_least_as_many_edges(self):
        """Theorem 1's tighter bound never reveals more edges (Section V)."""
        feasible = 0
        for seed in range(12):
            g = build_random_network(40, seed=seed)
            rng = np.random.default_rng(seed + 5)
            customers = [int(v) for v in rng.choice(40, size=8, replace=True)]
            facilities = sorted(
                int(v) for v in rng.choice(40, size=12, replace=False)
            )
            capacities = [2] * 12
            try:
                r1 = assign_all(
                    g, customers, facilities, capacities,
                    rule=ThresholdRule.THEOREM1,
                )
                r2 = assign_all(
                    g, customers, facilities, capacities,
                    rule=ThresholdRule.TAU_PRIME,
                )
            except MatchingError:
                continue  # disconnected draw; direction check needs success
            feasible += 1
            assert (
                r1.state.edges_materialized <= r2.state.edges_materialized
            )
        assert feasible >= 8


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    m=st.integers(2, 8),
    l=st.integers(2, 8),
)
def test_property_sspa_matches_hungarian(seed, m, l):
    """assign_all is optimal on arbitrary feasible random instances."""
    g = build_random_network(25, seed=seed % 40)
    rng = np.random.default_rng(seed)
    customers = [int(v) for v in rng.choice(25, size=m, replace=True)]
    facilities = sorted(int(v) for v in rng.choice(25, size=l, replace=False))
    capacities = [int(c) for c in rng.integers(1, 4, size=l)]
    ref = hungarian_reference(g, customers, facilities, capacities)
    if np.isinf(ref):
        with pytest.raises(MatchingError):
            assign_all(g, customers, facilities, capacities)
    else:
        result = assign_all(g, customers, facilities, capacities)
        assert result.cost == pytest.approx(ref, rel=1e-9)
