"""Tests for connected-component bookkeeping."""

from __future__ import annotations

import numpy as np

from repro.network.components import (
    ComponentStructure,
    component_labels,
    connected_components,
    customers_per_component,
)
from repro.network.graph import Network
from tests.conftest import build_line_network, build_two_component_network


class TestLabels:
    def test_single_component(self):
        g = build_line_network(5)
        labels = component_labels(g)
        assert len(set(labels)) == 1

    def test_two_components(self):
        g = build_two_component_network()
        labels = component_labels(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_nodes_get_own_component(self):
        g = Network(4, [(0, 1, 1.0)])
        labels = component_labels(g)
        assert len(set(labels.tolist())) == 3

    def test_directed_uses_weak_connectivity(self):
        g = Network(3, [(0, 1, 1.0), (2, 1, 1.0)], directed=True)
        labels = component_labels(g)
        assert len(set(labels.tolist())) == 1

    def test_empty_graph(self):
        g = Network(0, [])
        assert component_labels(g).size == 0


class TestConnectedComponents:
    def test_partition_covers_all_nodes(self):
        g = build_two_component_network()
        comps = connected_components(g)
        assert sorted(np.concatenate(comps).tolist()) == list(range(6))
        assert len(comps) == 2


class TestStructure:
    def test_membership(self):
        g = build_two_component_network()
        s = ComponentStructure.build(g, customer_nodes=[0, 4, 5], facility_nodes=[2, 3])
        comp0 = int(component_labels(g)[0])
        comp1 = int(component_labels(g)[3])
        assert s.customers_in[comp0] == [0]
        assert sorted(s.customers_in[comp1]) == [1, 2]
        assert s.facilities_in[comp0] == [0]
        assert s.facilities_in[comp1] == [1]

    def test_populated_components(self):
        g = build_two_component_network()
        s = ComponentStructure.build(g, customer_nodes=[0], facility_nodes=[2, 3])
        assert len(s.populated_components()) == 1

    def test_customers_per_component(self):
        g = build_two_component_network()
        s = ComponentStructure.build(g, customer_nodes=[0, 1, 4], facility_nodes=[])
        counts = customers_per_component(s)
        assert sorted(counts.values()) == [1, 2]


class TestMinimumBudget:
    def test_single_component_exact(self):
        g = build_line_network(6)
        s = ComponentStructure.build(
            g, customer_nodes=[0, 1, 2, 3, 4], facility_nodes=[0, 2, 4]
        )
        # Capacities 2,2,2: need ceil(5/2) = 3 facilities.
        assert s.minimum_budget([2, 2, 2]) == 3
        # One big facility suffices.
        assert s.minimum_budget([5, 1, 1]) == 1

    def test_sums_across_components(self):
        g = build_two_component_network()
        s = ComponentStructure.build(
            g, customer_nodes=[0, 1, 3, 4], facility_nodes=[2, 5]
        )
        assert s.minimum_budget([2, 2]) == 2

    def test_insufficient_capacity_flagged(self):
        g = build_two_component_network()
        s = ComponentStructure.build(
            g, customer_nodes=[0, 1, 2], facility_nodes=[0]
        )
        # Capacity 2 < 3 customers: signalled as > l.
        assert s.minimum_budget([2]) > 1

    def test_component_without_candidates_flagged(self):
        g = build_two_component_network()
        s = ComponentStructure.build(
            g, customer_nodes=[0, 3], facility_nodes=[1]
        )
        assert s.minimum_budget([10]) > 1

    def test_empty_component_costs_nothing(self):
        g = build_two_component_network()
        s = ComponentStructure.build(g, customer_nodes=[0], facility_nodes=[1, 4])
        assert s.minimum_budget([1, 1]) == 1
