"""Contraction-hierarchy correctness: CH results must be bit-identical.

The CH tier's contract is the same as the ALT oracle's and the distance
cache's: every observable output -- point-to-point queries, many-to-many
``distance_block`` entries, facility-stream emission order -- must be
*bit-identical* to the kernel Dijkstra path, because solvers compare and
accumulate these floats and a one-ulp divergence changes tie-breaking.
The property suite drives randomized directed, disconnected, and
parallel-edge graphs (zero-weight edges are rejected by ``Network``
itself, pinned below) against :class:`DijkstraWorkspace` ground truth;
structured adversarial graphs are pinned as explicit ``@example``
regressions.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.network import ch as ch_mod
from repro.network import oracle as oracle_mod
from repro.network.ch import CHFacilityStream, ContractionHierarchy
from repro.network.graph import Network
from repro.network.incremental import NearestFacilityStream, StreamPool
from repro.network.kernels import many_source_lengths, workspace_for
from repro.obs import metrics
from tests.conftest import (
    build_random_instance,
    build_random_network,
    build_two_component_network,
)

INF = math.inf


# ----------------------------------------------------------------------
# Graph strategies and pinned adversarial examples
# ----------------------------------------------------------------------
#: Tie-prone weights (unit grids produce many equal-length paths, the
#: hardest case for bit-identical tie unpacking) mixed with arbitrary
#: positive floats.
_weights = st.one_of(
    st.sampled_from([0.5, 1.0, 1.0, 2.0]),
    st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
)


@st.composite
def random_networks(draw) -> Network:
    """Random small graphs: directed or not, parallel edges, islands."""
    n = draw(st.integers(min_value=2, max_value=16))
    directed = draw(st.booleans())
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1), _weights
            ),
            max_size=3 * n,
        )
    )
    edges = [(u, v, w) for u, v, w in edges if u != v]
    return Network(n, edges, directed=directed)


#: Parallel edges: the cheaper duplicate must win on both paths.
_PARALLEL = Network(
    4,
    [(0, 1, 2.0), (0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.5), (2, 3, 1.0)],
)

#: Two islands: cross-component entries must be inf, not garbage.
_ISLANDS = Network(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])

#: A unit 2x2 grid: every opposite corner has two exactly-tied paths,
#: so the unpacked winner must reproduce the kernel's tie resolution.
_TIED = Network(
    4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)]
)

#: Directed asymmetric triangle: reachability is one-way.
_ONEWAY = Network(
    3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 10.0)], directed=True
)


def _kernel_matrix(network: Network) -> np.ndarray:
    """Ground-truth all-pairs matrix straight off the kernel workspace."""
    nodes = list(range(network.n_nodes))
    return many_source_lengths(
        network,
        [[s] for s in nodes],
        targets=nodes,
        workspace=workspace_for(network),
    )


class TestBitIdentityProperties:
    @settings(max_examples=60, deadline=None)
    @given(network=random_networks())
    @example(network=_PARALLEL)
    @example(network=_ISLANDS)
    @example(network=_TIED)
    @example(network=_ONEWAY)
    def test_query_matches_kernel_on_all_pairs(self, network):
        expected = _kernel_matrix(network)
        hierarchy = ContractionHierarchy.build(network)
        n = network.n_nodes
        for s in range(n):
            for t in range(n):
                got = hierarchy.query(s, t)
                want = float(expected[s, t])
                assert got == want, (s, t, got, want)

    @settings(max_examples=60, deadline=None)
    @given(network=random_networks())
    @example(network=_PARALLEL)
    @example(network=_ISLANDS)
    @example(network=_TIED)
    @example(network=_ONEWAY)
    def test_distance_block_matches_kernel(self, network):
        expected = _kernel_matrix(network)
        hierarchy = ContractionHierarchy.build(network)
        nodes = list(range(network.n_nodes))
        block = hierarchy.distance_block([[s] for s in nodes], nodes)
        assert np.array_equal(block, expected)

    @settings(max_examples=30, deadline=None)
    @given(network=random_networks(), radius=st.floats(0.5, 6.0))
    def test_distance_block_radius_matches_kernel(self, network, radius):
        nodes = list(range(network.n_nodes))
        expected = many_source_lengths(
            network,
            [[s] for s in nodes],
            targets=nodes,
            radius=radius,
            workspace=workspace_for(network),
        )
        hierarchy = ContractionHierarchy.build(network)
        block = hierarchy.distance_block(
            [[s] for s in nodes], nodes, radius=radius
        )
        assert np.array_equal(block, expected)

    @settings(max_examples=30, deadline=None)
    @given(network=random_networks())
    def test_multi_source_groups_match_kernel(self, network):
        n = network.n_nodes
        groups = [list(range(n)), [0], list(range(0, n, 2))]
        targets = list(range(n))
        expected = many_source_lengths(
            network, groups, targets=targets, workspace=workspace_for(network)
        )
        hierarchy = ContractionHierarchy.build(network)
        block = hierarchy.distance_block(groups, targets)
        assert np.array_equal(block, expected)

    def test_zero_weight_edges_rejected_upstream(self):
        # Network refuses non-positive weights, so the hierarchy never
        # has to witness zero-weight shortcuts -- pin the guard that the
        # property suite relies on.
        with pytest.raises(GraphError):
            Network(3, [(0, 1, 0.0), (1, 2, 1.0)])
        with pytest.raises(GraphError):
            Network(3, [(0, 1, -1.0)])


class TestStreamEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stream_matches_kernel_stream(self, seed):
        network = build_random_network(40, seed=seed)
        rng = np.random.default_rng(seed + 50)
        facilities = sorted(int(v) for v in rng.choice(40, 8, replace=False))
        hierarchy = ContractionHierarchy.build(network)
        for source in (0, 7, 23):
            kernel = NearestFacilityStream(network, source, facilities)
            fast = CHFacilityStream(hierarchy, source, facilities)
            for rank in range(len(facilities) + 1):
                assert kernel.facility_at(rank) == fast.facility_at(rank)

    def test_stream_pool_dispatches_to_ch(self):
        network = build_random_network(30, seed=2)
        hierarchy = ContractionHierarchy.build(network)
        with oracle_mod.use(hierarchy):
            pool = StreamPool(network, [1, 5, 9])
            assert pool.has_oracle
            stream = pool.stream_for(0)
        assert isinstance(stream, CHFacilityStream)

    def test_frontier_lower_bound_never_exceeds_next_emission(self):
        network = build_random_network(30, seed=4)
        hierarchy = ContractionHierarchy.build(network)
        stream = CHFacilityStream(hierarchy, 0, [3, 11, 19, 27])
        for rank in range(4):
            bound = stream.frontier_lower_bound()
            item = stream.facility_at(rank)
            if item is None:
                break
            assert bound <= item[1]

    def test_exhausted_on_island_source(self):
        stream = CHFacilityStream(
            ContractionHierarchy.build(_ISLANDS), 5, [0, 1, 3]
        )
        assert stream.facility_at(0) is None


class TestBuildAndPersistence:
    def test_build_is_deterministic(self):
        network = build_random_network(50, seed=7)
        a = ContractionHierarchy.build(network)
        b = ContractionHierarchy.build(network)
        assert a.info() == b.info()

    def test_save_load_round_trip(self, tmp_path):
        network = build_random_network(40, seed=3)
        hierarchy = ContractionHierarchy.build(network)
        path = str(tmp_path / "ch.npz")
        hierarchy.save(path)
        loaded = ContractionHierarchy.load(path, network)
        assert loaded is not None
        assert loaded.fingerprint == network.fingerprint
        expected = _kernel_matrix(network)
        nodes = list(range(network.n_nodes))
        block = loaded.distance_block([[s] for s in nodes], nodes)
        assert np.array_equal(block, expected)

    def test_load_rejects_corrupt_and_mismatched(self, tmp_path):
        network = build_random_network(20, seed=0)
        other = build_random_network(20, seed=1)
        path = str(tmp_path / "ch.npz")
        ContractionHierarchy.build(network).save(path)
        assert ContractionHierarchy.load(path, other) is None
        assert ContractionHierarchy.load(str(tmp_path / "no.npz")) is None
        with open(path, "wb") as fh:
            fh.write(b"not a zip")
        assert ContractionHierarchy.load(path, network) is None

    def test_load_or_build_counts_hits_and_misses(self, tmp_path):
        network = build_random_network(25, seed=5)
        reg = metrics.Registry()
        with metrics.use(reg):
            ch_mod.load_or_build(network, str(tmp_path))
            ch_mod.load_or_build(network, str(tmp_path))
        counts = reg.as_dict()
        assert counts["oracle.cache_misses"] == 1
        assert counts["oracle.cache_hits"] == 1
        assert counts["ch.shortcuts"] >= 0

    def test_bind_rejects_foreign_network(self):
        network = build_random_network(20, seed=0)
        other = build_random_network(20, seed=1)
        hierarchy = ContractionHierarchy.build(network)
        with pytest.raises(GraphError):
            hierarchy.bind(other)

    def test_query_bounds_checked(self):
        hierarchy = ContractionHierarchy.build(build_random_network(10))
        with pytest.raises(GraphError):
            hierarchy.query(0, 10)
        with pytest.raises(GraphError):
            hierarchy.query(-1, 0)

    def test_pickle_round_trip_drops_caches_only(self):
        network = build_random_network(30, seed=6)
        hierarchy = ContractionHierarchy.build(network)
        expected = _kernel_matrix(network)
        clone = pickle.loads(pickle.dumps(hierarchy))
        nodes = list(range(network.n_nodes))
        block = clone.distance_block([[s] for s in nodes], nodes)
        assert np.array_equal(block, expected)

    def test_info_reports_shortcuts_and_degree(self):
        network = build_random_network(40, seed=1)
        doc = ContractionHierarchy.build(network).info()
        assert doc["kind"] == "ch"
        assert doc["n_shortcuts"] >= 0
        assert doc["n_arcs"] >= doc["n_shortcuts"]
        assert doc["avg_upward_degree"] > 0
        assert doc["blob_bytes"] > 0


class TestScopeIntegration:
    def test_resolve_ch_builds_default_hierarchy(self, monkeypatch):
        monkeypatch.delenv(oracle_mod.ORACLE_DIR_ENV_VAR, raising=False)
        network = build_random_network(20, seed=0)
        resolved = oracle_mod.resolve("ch", network)
        assert isinstance(resolved, ContractionHierarchy)
        # Memoized per (network, kind); the ALT kind is independent.
        assert oracle_mod.resolve("ch", network) is resolved
        assert oracle_mod.resolve("alt", network) is not resolved

    def test_env_knob_accepts_ch(self, monkeypatch):
        monkeypatch.setenv(oracle_mod.ORACLE_ENV_VAR, "ch")
        network = build_random_network(20, seed=0)
        assert isinstance(
            oracle_mod.resolve(None, network), ContractionHierarchy
        )

    def test_active_ch_for_ignores_alt_scope(self):
        network = build_random_network(20, seed=0)
        alt = oracle_mod.AltOracle.build(network, n_landmarks=2)
        with oracle_mod.use(alt):
            assert oracle_mod.active_ch_for(network) is None
            assert oracle_mod.active_for(network) is alt

    def test_kernel_matrix_hook_uses_buckets(self):
        network = build_random_network(40, seed=3)
        sources = [[s] for s in range(10)]
        targets = list(range(20, 30))
        expected = many_source_lengths(network, sources, targets=targets)
        hierarchy = ContractionHierarchy.build(network)
        reg = metrics.Registry()
        with metrics.use(reg), oracle_mod.use(hierarchy):
            got = many_source_lengths(network, sources, targets=targets)
        assert np.array_equal(got, expected)
        counts = reg.as_dict()
        assert counts["ch.matrix_blocks"] == 1
        assert counts.get("dijkstra.kernel_runs", 0) == 0

    def test_two_component_matrix(self):
        network = build_two_component_network()
        expected = _kernel_matrix(network)
        hierarchy = ContractionHierarchy.build(network)
        nodes = list(range(network.n_nodes))
        block = hierarchy.distance_block([[s] for s in nodes], nodes)
        assert np.array_equal(block, expected)

    def test_solver_objective_identical_under_ch(self):
        from repro.obs.profile import profile_solver

        instance = build_random_instance(1, n=40, m=8, l=10, k=4)
        plain = profile_solver(instance, "wma", oracle=False)
        fast = profile_solver(instance, "wma", oracle="ch")
        assert fast.objective == plain.objective
        assert fast.metrics["ch.upward_settles"] > 0
        assert plain.metrics["ch.upward_settles"] == 0
