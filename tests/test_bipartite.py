"""Tests for the bipartite matching state."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.flow.bipartite import BipartiteState
from repro.network.incremental import StreamPool
from tests.conftest import build_line_network


def make_state(**kwargs):
    g = build_line_network(10)
    defaults = dict(
        network=g,
        customer_nodes=[1, 8],
        facility_nodes=[0, 5, 9],
        capacities=[1, 2, 1],
    )
    defaults.update(kwargs)
    return BipartiteState(**defaults)


class TestConstruction:
    def test_dimensions(self):
        state = make_state()
        assert state.m == 2
        assert state.l == 3
        assert state.edges_materialized == 0

    def test_misaligned_capacities_rejected(self):
        with pytest.raises(GraphError):
            make_state(capacities=[1])

    def test_duplicate_facilities_rejected(self):
        with pytest.raises(GraphError):
            make_state(facility_nodes=[0, 0, 9], capacities=[1, 1, 1])

    def test_shared_pool_must_cover_facilities(self):
        g = build_line_network(10)
        pool = StreamPool(g, [0, 5])
        with pytest.raises(GraphError, match="pool"):
            BipartiteState(g, [1], [9], [1], pool=pool)


class TestMaterialization:
    def test_edges_revealed_in_distance_order(self):
        state = make_state()
        j1 = state.materialize_next(0)
        j2 = state.materialize_next(0)
        j3 = state.materialize_next(0)
        # Customer at node 1: nearest facility node 0 (d=1), then 5 (d=4),
        # then 9 (d=8).
        assert [j1, j2, j3] == [0, 1, 2]
        assert state.edges[0][0] == pytest.approx(1.0)
        assert state.edges[0][1] == pytest.approx(4.0)
        assert state.materialize_next(0) is None
        assert state.edges_materialized == 3

    def test_next_candidate_distance(self):
        state = make_state()
        assert state.next_candidate_distance(0) == pytest.approx(1.0)
        state.materialize_next(0)
        assert state.next_candidate_distance(0) == pytest.approx(4.0)


class TestMatching:
    def test_match_unmatch_bookkeeping(self):
        state = make_state()
        state.materialize_next(0)
        state.match(0, 0)
        assert state.load(0) == 1
        assert state.assignment_count(0) == 1
        assert state.is_full(0)
        state.unmatch(0, 0)
        assert state.load(0) == 0
        assert not state.is_full(0)

    def test_match_requires_materialized_edge(self):
        state = make_state()
        with pytest.raises(GraphError, match="not materialized"):
            state.match(0, 2)

    def test_double_match_rejected(self):
        state = make_state()
        state.materialize_next(0)
        state.match(0, 0)
        with pytest.raises(GraphError, match="already"):
            state.match(0, 0)

    def test_unmatch_requires_flow(self):
        state = make_state()
        state.materialize_next(0)
        with pytest.raises(GraphError, match="no flow"):
            state.unmatch(0, 0)

    def test_total_cost_and_pairs(self):
        state = make_state()
        state.materialize_next(0)
        state.materialize_next(0)
        state.match(0, 0)
        state.match(0, 1)
        assert state.total_cost() == pytest.approx(5.0)
        pairs = sorted(state.matched_pairs())
        assert pairs == [(0, 0, 1.0), (0, 1, 4.0)]

    def test_coverage_sets_are_copies(self):
        state = make_state()
        state.materialize_next(0)
        state.match(0, 0)
        sigma = state.coverage_sets()
        sigma[0].clear()
        assert state.load(0) == 1


class TestFilteredCursor:
    def test_filter_skips_foreign_facilities(self):
        g = build_line_network(10)
        pool = StreamPool(g, [0, 5, 9])
        # Restricted state only knows facilities at 5 and 9.
        state = BipartiteState(g, [1], [5, 9], [1, 1], pool=pool)
        j = state.materialize_next(0)
        assert state.facility_nodes[j] == 5
        j = state.materialize_next(0)
        assert state.facility_nodes[j] == 9
        assert state.materialize_next(0) is None

    def test_filter_preserves_distances(self):
        g = build_line_network(10)
        pool = StreamPool(g, [0, 5, 9])
        state = BipartiteState(g, [1], [9], [1], pool=pool)
        assert state.next_candidate_distance(0) == pytest.approx(8.0)
