"""What happens to a facility selection when streets have throughput?

The paper's model (like most facility-location work) routes every
customer along a shortest path, assuming streets carry any number of
them.  This example uses the library's min-cost-flow extension to
re-route a WMA selection under per-edge throughput limits and watch the
assumption break: cost creeps up as detours lengthen, then the instance
snaps to infeasible when the cut around a demand hotspot saturates.

Run:
    python examples/congestion_study.py
"""

from __future__ import annotations

import math

from repro import solve
from repro.bench.reporting import format_table
from repro.core.throughput import assign_with_throughput, congestion_profile
from repro.datagen import city_instance, grid_city


def main() -> None:
    network = grid_city(16, 16, seed=2, drop_rate=0.05)
    instance = city_instance(
        network, m=80, k=10, capacity=10, seed=2, name="grid-congestion"
    )
    print("Instance:", instance.describe())

    solution = solve(instance, method="wma")
    print(
        f"WMA opened {len(solution.selected)} facilities, "
        f"shortest-path objective {solution.objective:.0f} m"
    )
    print()

    throughputs = [math.inf, 10.0, 6.0, 4.0, 2.0, 1.0]
    rows = congestion_profile(
        instance, list(solution.selected), throughputs
    )
    for row in rows:
        if row["cost"] is None:
            row["cost"] = "infeasible"
    print(format_table(rows, title="Routed cost vs per-edge throughput"))
    print()

    # Where does the congestion concentrate?  Busiest edges at a
    # moderately tight throughput.
    result = assign_with_throughput(instance, list(solution.selected), 6.0)
    busiest = sorted(
        zip(result.edge_flows, network.edges()), reverse=True
    )[:5]
    print("Busiest street segments at throughput 6:")
    for flow, (u, v, w) in busiest:
        print(f"  edge {u}-{v} ({w:.0f} m): {flow:.0f} customers routed")


if __name__ == "__main__":
    main()
