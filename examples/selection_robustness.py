"""How long does a facility selection stay good as demand drifts?

Operators don't re-run facility selection for every demand change; they
keep the selection and re-assign customers (cheap), re-selecting only
when the old choice becomes noticeably stale.  This example quantifies
that trade-off with the library's drift study: a growing fraction of the
customer population is resampled, and the fixed selection's optimal
reassignment cost is compared with a from-scratch re-solve.

Run:
    python examples/selection_robustness.py
"""

from __future__ import annotations

from repro import solve
from repro.analysis import drift_study
from repro.bench.reporting import format_table
from repro.datagen import clustered_instance


def main() -> None:
    instance = clustered_instance(
        512, n_clusters=20, alpha=1.5, customer_frac=0.15,
        capacity=10, k_frac_of_m=0.3, seed=9,
    )
    print("Instance:", instance.describe())
    solution = solve(instance, method="wma")
    print(
        f"WMA selection: {len(solution.selected)} facilities, "
        f"objective {solution.objective:.0f}"
    )
    print()

    points = drift_study(
        instance,
        solution,
        fractions=(0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
        seed=4,
    )
    rows = []
    for p in points:
        rows.append(
            {
                "drift": f"{p.drift_fraction:.0%}",
                "stale_selection_cost": (
                    round(p.stale_cost, 1) if p.stale_cost is not None
                    else "infeasible"
                ),
                "fresh_solve_cost": (
                    round(p.fresh_cost, 1) if p.fresh_cost is not None else "-"
                ),
                "regret": (
                    f"{p.regret:+.1%}" if p.regret is not None else "-"
                ),
            }
        )
    print(format_table(rows, title="Selection regret vs demand drift"))
    print()
    print(
        "Rule of thumb from this study: re-assignment alone (the cheap "
        "operation) absorbs small drifts; re-selection pays off once the "
        "regret column grows past the cost of disruption."
    )


if __name__ == "__main__":
    main()
