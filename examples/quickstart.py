"""Quickstart: select capacitated facilities on a synthetic road network.

Generates a uniform random geometric network (the paper's Section VII-B
setup), places customers on 10% of the nodes, and compares the Wide
Matching Algorithm against the Hilbert baseline and the exact MILP
optimum.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import solve, validate_solution
from repro.bench.reporting import format_table
from repro.datagen import uniform_instance


def main() -> None:
    # A 256-node network with alpha = 2 density, 26 customers, capacity
    # 20 per facility, and a budget of k = 3 facilities.
    instance = uniform_instance(
        256, alpha=2.0, customer_frac=0.1, capacity=20, seed=7
    )
    print("Instance:", instance.describe())
    print()

    rows = []
    for method in ("wma", "wma-uf", "hilbert", "wma-naive", "random", "exact"):
        solution = solve(instance, method=method)
        validate_solution(instance, solution)  # audit before trusting
        rows.append(solution.summary_row())

    print(format_table(rows, title="Solver comparison (lower objective is better)"))
    print()

    best = min(rows, key=lambda r: r["objective"])
    wma = next(r for r in rows if r["algorithm"] == "wma")
    print(
        f"WMA is within {wma['objective'] / best['objective'] - 1:.1%} of "
        f"the best solution found, in {wma['runtime_sec']:.3f}s."
    )


if __name__ == "__main__":
    main()
