"""Dynamic customer reallocation on a fixed facility selection.

The paper's introduction motivates MCFS with services that must be
"solved scalably and repeatedly, as in applications requiring the
dynamic reallocation of customers to facilities".  This example selects
facilities once with WMA and then serves a live stream of customer
arrivals and departures, keeping the assignment *optimal* at every step
without re-solving from scratch.

Run:
    python examples/dynamic_reallocation.py
"""

from __future__ import annotations

import numpy as np

from repro import DynamicAllocator, solve
from repro.bench.reporting import format_table
from repro.datagen import clustered_instance
from repro.errors import MatchingError


def main() -> None:
    instance = clustered_instance(
        512, n_clusters=20, alpha=1.5, customer_frac=0.1,
        capacity=20, k_frac_of_m=0.2, seed=5,
    )
    print("Instance:", instance.describe())

    solution = solve(instance, method="wma")
    print(
        f"WMA selected {len(solution.selected)} facilities, "
        f"initial objective {solution.objective:.0f}"
    )
    print()

    allocator = DynamicAllocator(instance, solution.selected)
    rng = np.random.default_rng(1)
    live = list(range(instance.m))

    log = []
    for step in range(60):
        if live and rng.random() < 0.45:
            handle = live.pop(int(rng.integers(len(live))))
            allocator.remove_customer(handle)
            action = "departure"
        else:
            node = int(rng.integers(instance.network.n_nodes))
            try:
                live.append(allocator.add_customer(node))
                action = "arrival"
            except MatchingError:
                action = "rejected (no capacity reachable)"
        if step % 12 == 0:
            log.append(
                {
                    "step": step,
                    "event": action,
                    "active": allocator.n_active,
                    "cost": round(allocator.cost, 1),
                    "residual_capacity": allocator.residual_capacity(),
                }
            )

    print(format_table(log, title="Churn timeline (every 12th step)"))
    print()

    moves = [e.reassigned for e in allocator.events if e.kind == "arrival"]
    print(
        f"{len(moves)} arrivals processed; "
        f"{sum(1 for x in moves if x > 0)} of them rewired existing "
        f"customers (max {max(moves, default=0)} moved at once)."
    )
    print(
        "The assignment after every step is provably optimal for the "
        "active customers on the fixed selection."
    )


if __name__ == "__main__":
    main()
