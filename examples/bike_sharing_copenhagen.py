"""Dockless bike docking-station selection (the paper's Section VII-F.2).

A dockless bike-sharing operator periodically gathers scattered bikes
and redistributes them to "preferable" docking stations.  Following the
paper's pipeline on a synthetic radial city:

1. simulate hourly bike flows on the street network (inbound commute in
   the morning, outbound in the evening);
2. take the divergence of the flow field at each node -- the bikes that
   accumulate there per hour -- and its variance across the day as the
   docking-demand proxy;
3. scatter bikes according to that demand distribution;
4. select k docking stations under per-station capacities with WMA.

Run:
    python examples/bike_sharing_copenhagen.py
"""

from __future__ import annotations

import numpy as np

from repro import solve, validate_solution
from repro.bench.reporting import format_table
from repro.datagen import (
    bike_demand_distribution,
    city_instance,
    radial_city,
    simulate_hourly_flows,
    weighted_customers,
)


def main() -> None:
    seed = 5
    rng = np.random.default_rng(seed)
    network = radial_city(14, 48, ring_spacing=220.0, seed=seed)
    print(
        f"Copenhagen-like radial city: {network.n_nodes} nodes, "
        f"{network.n_edges} street segments"
    )

    # Flow simulation and demand derivation.
    flows = simulate_hourly_flows(network, rng)
    demand = bike_demand_distribution(network, flows)
    top = np.argsort(demand)[-3:][::-1]
    print(
        "Highest docking demand at nodes",
        ", ".join(f"{v} (p={demand[v]:.4f})" for v in top),
    )
    print()

    # Candidate stations: random street nodes with small capacities.
    n_stations = 250
    stations = sorted(
        int(v)
        for v in rng.choice(network.n_nodes, size=n_stations, replace=False)
    )
    capacities = [int(c) for c in rng.integers(1, 9, size=n_stations)]
    bikes = weighted_customers(network, 220, demand, rng)

    for k in (70, 120):
        instance = city_instance(
            network,
            m=220,
            k=k,
            capacity=capacities,
            customer_nodes=bikes,
            facility_nodes=stations,
            name=f"cph-bikes-k{k}",
        )
        rows = []
        for method in ("wma", "wma-uf", "hilbert", "wma-naive"):
            solution = solve(instance, method=method)
            validate_solution(instance, solution)
            row = solution.summary_row()
            row["k"] = k
            rows.append(row)
        print(format_table(rows, title=f"k = {k} docking stations"))
        print()

    # How full do the chosen stations run?
    instance = city_instance(
        network,
        m=220,
        k=70,
        capacity=capacities,
        customer_nodes=bikes,
        facility_nodes=stations,
    )
    solution = solve(instance, method="wma")
    loads = solution.load_per_facility()
    utilisation = [
        loads[j] / instance.capacities[j] for j in solution.selected
    ]
    print(
        f"Station utilisation at k=70: mean {np.mean(utilisation):.0%}, "
        f"max {np.max(utilisation):.0%}"
    )


if __name__ == "__main__":
    main()
