"""Coworking meeting-place selection (the paper's Section VII-F.1a).

Cafes and restaurants offer part of their space as coworking seats
during non-rush hours; their daily operational hours act as nonuniform
capacities.  This example rebuilds the Las Vegas scenario on a synthetic
grid city:

1. generate a grid road network (Las Vegas' signature structure);
2. sample venues with synthetic occupancies and opening hours;
3. derive the coworker distribution from venue occupancies with the
   network-Voronoi technique;
4. select k venues with WMA (Direct and Uniform-First) and compare
   against Hilbert and the exact optimum.

Run:
    python examples/coworking_las_vegas.py
"""

from __future__ import annotations

import numpy as np

from repro import solve, validate_solution
from repro.bench.reporting import format_table
from repro.datagen import (
    city_instance,
    grid_city,
    occupancy_customer_distribution,
    operational_hours_capacities,
    synth_occupancies,
    weighted_customers,
)


def build_instance(k: int, seed: int = 11):
    network = grid_city(24, 28, spacing=120.0, seed=seed)
    rng = np.random.default_rng(seed)

    n_venues = 220
    venues = sorted(
        int(v) for v in rng.choice(network.n_nodes, size=n_venues, replace=False)
    )
    hours = operational_hours_capacities(n_venues, rng)  # capacity = hours
    occupancies = synth_occupancies(n_venues, rng)

    weights = occupancy_customer_distribution(network, venues, occupancies)
    coworkers = weighted_customers(network, 200, weights, rng)

    return city_instance(
        network,
        m=200,
        k=k,
        capacity=hours,
        customer_nodes=coworkers,
        facility_nodes=venues,
        name=f"vegas-coworking-k{k}",
    )


def main() -> None:
    print("Las Vegas coworking scenario (grid city, hour-capacities)")
    print()
    for k in (40, 80):
        instance = build_instance(k)
        rows = []
        for method in ("wma", "wma-uf", "hilbert", "wma-naive"):
            solution = solve(instance, method=method)
            validate_solution(instance, solution)
            row = solution.summary_row()
            row["k"] = k
            rows.append(row)
        print(format_table(rows, title=f"k = {k} venues"))
        print()

    # Operational detail: show the WMA iteration trace for one run
    # (the paper's Figure 12b diagnostics).
    from repro.core import WMASolver

    instance = build_instance(60)
    solver = WMASolver(instance)
    solution = solver.solve()
    print(
        format_table(
            solver.trace.rows(),
            title="WMA per-iteration trace (covered customers, phase times)",
        )
    )

    # Export a map-ready scenario file (network, venues, coworkers, and
    # the selected meeting places with their loads).
    from repro.io import export_scenario

    export_scenario(instance, solution, "vegas_coworking.geojson.json")
    print()
    print("Scenario exported to vegas_coworking.geojson.json")


if __name__ == "__main__":
    main()
