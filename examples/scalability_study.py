"""Scalability study: WMA vs the exact solver as networks grow.

Reproduces the headline storyline of the paper's Figure 6 at laptop
scale: the exact MILP solver's runtime explodes with network size while
WMA (and the Hilbert baseline) grow gracefully, with WMA's objective
staying close to optimal where the optimum is computable.

Run:
    python examples/scalability_study.py [--sizes 128,256,512]
"""

from __future__ import annotations

import argparse

from repro.bench import experiments as ex
from repro.bench.harness import run_solvers
from repro.bench.reporting import format_series, paper_shape_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default="128,256,512",
        help="comma-separated network sizes to sweep",
    )
    parser.add_argument(
        "--exact-time-limit",
        type=float,
        default=30.0,
        help="seconds before the exact solver is declared failed",
    )
    args = parser.parse_args()
    sizes = tuple(int(s) for s in args.sizes.split(","))

    rows = []
    for params, instance in ex.fig6a_cases(sizes=sizes, seed=0):
        methods = ["wma", "hilbert", "wma-naive"]
        if ex.include_exact(instance):
            methods.append("exact")
        rows += run_solvers(
            instance,
            methods,
            params=params,
            exact_time_limit=args.exact_time_limit,
        )
        print(f"  solved n={params['n']}")

    print()
    print(format_series(rows, x_key="n", value="objective",
                        title="Objective by network size (Fig 6a shape)"))
    print()
    print(format_series(rows, x_key="n", value="runtime_sec",
                        title="Runtime [s] by network size"))
    print()
    summary = paper_shape_summary(rows)
    for method, stats in sorted(summary.items()):
        print(
            f"{method:10s} mean objective ratio to best: "
            f"{stats['mean_ratio_to_best']:.3f} "
            f"(mean runtime {stats['mean_runtime_sec']:.3f}s)"
        )


if __name__ == "__main__":
    main()
