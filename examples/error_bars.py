"""Seed-averaged comparison with error bars.

Single instances at reproduction scale are noisy (marginal cover gains
are tiny integers, so tie-breaking moves outcomes); this example shows
the right way to compare heuristics here: run each configuration across
several seeds and report mean +/- standard deviation.

Run:
    python examples/error_bars.py [--seeds 5]
"""

from __future__ import annotations

import argparse

from repro.bench.reporting import format_table
from repro.bench.sweeps import aggregate, seeded_sweep
from repro.datagen.instances import clustered_instance


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--n", type=int, default=512)
    args = parser.parse_args()

    def factory(seed):
        return [
            (
                {"clusters": clusters},
                clustered_instance(
                    args.n,
                    n_clusters=clusters,
                    alpha=1.5,
                    customer_frac=0.15,
                    capacity=10,
                    k_frac_of_m=0.3,
                    seed=seed,
                ),
            )
            for clusters in (5, 20, 40)
        ]

    rows = seeded_sweep(
        factory,
        seeds=tuple(range(args.seeds)),
        methods=("wma", "hilbert", "wma-naive"),
        x_key="clusters",
    )
    agg = aggregate(rows, x_key="clusters")
    print(
        format_table(
            agg,
            title=(
                f"Clustered instances, n={args.n}, "
                f"{args.seeds} seeds per point (mean +/- std)"
            ),
        )
    )
    print()
    print(
        "Reading guide: objective_std / objective_mean is each heuristic's "
        "seed-to-seed volatility; WMA's shrinks as instances grow."
    )


if __name__ == "__main__":
    main()
