"""Setuptools shim.

Kept so that ``pip install -e .`` works on environments whose setuptools
lacks PEP 660 editable-wheel support (no ``wheel`` package available).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
