"""Variance study: seed-to-seed stability of each heuristic.

EXPERIMENTS.md attributes several shape deviations to WMA's tie-density
noise at reproduction scale.  This bench quantifies it: the same figure
configuration across several seeds, reporting mean +/- std per method.
A companion data point for anyone tuning the tie-breaking extensions.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bench.sweeps import aggregate, seeded_sweep
from repro.datagen.instances import clustered_instance


def test_variance_study(benchmark):
    def factory(seed):
        return [
            (
                {"n": 512},
                clustered_instance(
                    512,
                    n_clusters=20,
                    alpha=1.5,
                    customer_frac=0.2,
                    capacity=20,
                    k_frac_of_m=0.1,
                    seed=seed,
                ),
            )
        ]

    rows = benchmark.pedantic(
        lambda: seeded_sweep(
            factory,
            seeds=(0, 1, 2, 3, 4),
            methods=("wma", "hilbert", "wma-naive"),
            x_key="n",
        ),
        rounds=1,
        iterations=1,
    )
    agg = aggregate(rows, x_key="n")
    print()
    print(format_table(agg, title="Variance over 5 seeds (Fig-7a config, n=512)"))

    by_method = {row["method"]: row for row in agg}
    for row in agg:
        assert row["failures"] == 0
        assert row["objective_std"] is not None
    # Relative spread stays bounded: no method should swing by more than
    # ~50% of its mean across seeds on this moderate configuration.
    for method, row in by_method.items():
        rel = row["objective_std"] / row["objective_mean"]
        assert rel < 0.5, (method, rel)
    benchmark.extra_info["rows"] = agg
