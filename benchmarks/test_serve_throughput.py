"""Benchmark: online serving throughput on a city-scale graph.

Replays an arrivals-only 1k-mutation stream through
:class:`repro.serve.ServeEngine` on the ~5k-node perturbed Manhattan
grid and compares it with per-mutation cold re-solves.

The matcher's assignment path runs on resumable nearest-facility
streams, not on the batch Dijkstra kernel, so ``dijkstra.kernel_runs``
is zero on *both* paths (asserted); the honest work metric is
``incremental.streams`` -- how many per-customer Dijkstra streams each
strategy opens.  Streams are pooled per source node, so the warm engine
opens at most one per distinct arrival node across the whole replay,
while a cold re-solve after the ``t``-th arrival re-opens one per
*distinct active customer node* (verified empirically on sampled
states); the full per-mutation sweep's stream count is therefore an
exact prefix sum and the 10x gate needs no extrapolation.

Mutations/sec at ``staleness == "optimal"`` -- with and without the CH
oracle scope active -- is appended to ``BENCH_serve.json``.

Run with:
    pytest benchmarks/test_serve_throughput.py -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.instance import MCFSInstance
from repro.datagen.urban import grid_city
from repro.flow.sspa import assign_all
from repro.network import oracle as oracle_mod
from repro.network.ch import ContractionHierarchy
from repro.obs import metrics
from repro.serve import CustomerArrive, ServeEngine, synthesize_trace

ROWS = COLS = 71  # ~5k nodes, the scale the acceptance criterion names
N_MUTATIONS = 1000
BATCH = 100
N_FACILITIES = 24
CAPACITY = 50  # 24 x 50 seats comfortably hold the 1k arrivals
COLD_STRIDE = 100  # cold re-solve sampled every 100th arrival state
REQUIRED_STREAM_REDUCTION = 10.0
BENCH_ROW_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_serve.json"
)


def _city_instance():
    network = grid_city(ROWS, COLS, seed=0)
    assert network.n_nodes >= 5000
    rng = np.random.default_rng(7)
    facility_nodes = sorted(
        int(v)
        for v in rng.choice(network.n_nodes, size=N_FACILITIES, replace=False)
    )
    customers = tuple(
        int(v) for v in rng.integers(0, network.n_nodes, size=8)
    )
    return MCFSInstance(
        network=network,
        customers=customers,
        facility_nodes=tuple(facility_nodes),
        capacities=(CAPACITY,) * N_FACILITIES,
        k=N_FACILITIES,
    )


def _replay(instance, arrivals, *, oracle=None):
    """One warm replay; returns (engine, seconds, counters)."""
    reg = metrics.Registry()
    scope = oracle_mod.use(oracle) if oracle is not None else None
    with metrics.use(reg):
        engine = ServeEngine(instance, range(N_FACILITIES))
        started = time.perf_counter()
        if scope is None:
            for start in range(0, len(arrivals), BATCH):
                result = engine.apply(arrivals[start:start + BATCH])
                assert result.staleness == "optimal"
                assert result.rejected == 0 and result.shed == 0
        else:
            with scope:
                for start in range(0, len(arrivals), BATCH):
                    result = engine.apply(arrivals[start:start + BATCH])
                    assert result.staleness == "optimal"
                    assert result.rejected == 0 and result.shed == 0
        elapsed = time.perf_counter() - started
    return engine, elapsed, reg.as_dict()


def test_serve_throughput_city_scale():
    instance = _city_instance()
    arrivals = synthesize_trace(
        instance.network,
        N_MUTATIONS,
        facility_nodes=[
            instance.facility_nodes[j] for j in range(N_FACILITIES)
        ],
        capacities=[CAPACITY] * N_FACILITIES,
        start_handle=len(instance.customers),
        customer_nodes=list(instance.customers),
        seed=11,
        p_depart=0.0,
        p_capacity=0.0,
    )
    assert all(isinstance(m, CustomerArrive) for m in arrivals)

    engine, warm_sec, warm_counts = _replay(instance, arrivals)
    warm_streams = warm_counts["incremental.streams"]
    assert warm_counts.get("dijkstra.kernel_runs", 0) == 0

    # Cold reference: re-solve the full assignment after every arrival.
    # Streams are pooled per source node, so a cold solve opens exactly
    # one stream per distinct customer node; sampled states verify that,
    # which gives the full sweep's total as an exact prefix sum without
    # running all 1000 solves.
    sub_nodes = [instance.facility_nodes[j] for j in range(N_FACILITIES)]
    sub_caps = [CAPACITY] * N_FACILITIES
    m0 = len(instance.customers)
    nodes = list(instance.customers) + [m.node for m in arrivals]
    distinct_prefix = []  # distinct nodes among the first i customers
    seen: set[int] = set()
    for node in nodes:
        seen.add(node)
        distinct_prefix.append(len(seen))
    cold_sampled_sec = 0.0
    n_sampled = 0
    for t in range(COLD_STRIDE, N_MUTATIONS + 1, COLD_STRIDE):
        reg = metrics.Registry()
        t0 = time.perf_counter()
        with metrics.use(reg):
            assign_all(instance.network, nodes[: m0 + t], sub_nodes, sub_caps)
        cold_sampled_sec += time.perf_counter() - t0
        n_sampled += 1
        counts = reg.as_dict()
        assert counts["incremental.streams"] == distinct_prefix[m0 + t - 1]
        assert counts.get("dijkstra.kernel_runs", 0) == 0
    cold_streams_total = sum(
        distinct_prefix[m0 + t - 1] for t in range(1, N_MUTATIONS + 1)
    )

    stream_reduction = cold_streams_total / warm_streams
    final_cold = assign_all(
        instance.network, nodes, sub_nodes, sub_caps
    ).cost
    assert engine.cost == final_cold  # bit-identical, not approx

    # Same replay under the CH oracle scope (distance queries that fall
    # through to matrix/point lookups ride the hierarchy).
    ch_started = time.perf_counter()
    hierarchy = ContractionHierarchy.build(instance.network)
    ch_build_sec = time.perf_counter() - ch_started
    engine_ch, ch_sec, ch_counts = _replay(instance, arrivals, oracle=hierarchy)
    assert engine_ch.cost == final_cold

    warm_rate = N_MUTATIONS / warm_sec
    ch_rate = N_MUTATIONS / ch_sec
    row = {
        "bench": "serve_throughput_arrivals",
        "graph": {"kind": "grid_city", "rows": ROWS, "cols": COLS,
                  "seed": 0, "n_nodes": instance.network.n_nodes},
        "workload": {"mutations": N_MUTATIONS, "batch": BATCH,
                     "facilities": N_FACILITIES, "capacity": CAPACITY},
        "warm": {"sec": round(warm_sec, 4),
                 "mutations_per_sec": round(warm_rate, 1),
                 "staleness": "optimal",
                 "streams": warm_streams,
                 "kernel_runs": warm_counts.get("dijkstra.kernel_runs", 0)},
        "warm_ch_oracle": {"sec": round(ch_sec, 4),
                           "build_sec": round(ch_build_sec, 4),
                           "mutations_per_sec": round(ch_rate, 1),
                           "staleness": "optimal"},
        "cold": {"sampled_resolves": n_sampled,
                 "sampled_sec": round(cold_sampled_sec, 4),
                 "streams_total": cold_streams_total},
        "stream_reduction": round(stream_reduction, 1),
        "final_cost": round(final_cold, 2),
    }
    with open(BENCH_ROW_PATH, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    print(
        f"\nwarm: {N_MUTATIONS} arrivals in {warm_sec:.2f}s "
        f"({warm_rate:.0f} mut/s, {warm_streams:g} streams) | "
        f"ch-oracle: {ch_rate:.0f} mut/s | cold sweep: "
        f"{cold_streams_total:g} streams "
        f"({n_sampled} states sampled, {cold_sampled_sec:.2f}s) -> "
        f"{stream_reduction:.0f}x fewer streams"
    )
    assert stream_reduction >= REQUIRED_STREAM_REDUCTION
    assert warm_rate > 0


def test_final_cost_matches_cold_solve_small():
    """Cheap guard: the same equivalence on a small instance."""
    instance = MCFSInstance(
        network=grid_city(12, 12, seed=1),
        customers=(3, 50, 77),
        facility_nodes=(0, 60, 140),
        capacities=(30, 30, 30),
        k=3,
    )
    arrivals = synthesize_trace(
        instance.network,
        60,
        facility_nodes=[0, 60, 140],
        capacities=[30, 30, 30],
        start_handle=3,
        customer_nodes=[3, 50, 77],
        seed=2,
        p_depart=0.0,
        p_capacity=0.0,
    )
    engine = ServeEngine(instance, [0, 1, 2])
    result = engine.apply(arrivals)
    assert result.applied == 60
    cold = assign_all(
        instance.network,
        engine.customer_nodes(),
        [0, 60, 140],
        [30, 30, 30],
    ).cost
    assert engine.cost == cold
    assert engine.cost == pytest.approx(cold)
