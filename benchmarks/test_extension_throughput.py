"""Extension benchmark: routed cost under edge-throughput constraints.

The paper's model assumes "no throughput constraints on edges"; this
bench quantifies what that assumption hides.  A WMA selection on a grid
city is re-routed under tightening per-edge throughput: the cost curve
rises smoothly while detours exist and the problem snaps to infeasible
once the cut around a demand hotspot saturates.
"""

from __future__ import annotations

import math

from repro import solve
from repro.bench.reporting import format_table
from repro.core.throughput import congestion_profile
from repro.datagen.instances import city_instance
from repro.datagen.urban import grid_city


def test_extension_throughput(benchmark):
    network = grid_city(14, 14, seed=4, drop_rate=0.05)
    instance = city_instance(
        network, m=60, k=8, capacity=10, seed=4, name="grid-congestion"
    )
    solution = solve(instance, method="wma")

    throughputs = [math.inf, 8.0, 4.0, 2.0, 1.0]
    rows = benchmark.pedantic(
        lambda: congestion_profile(
            instance, list(solution.selected), throughputs
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows, title="Routed cost vs per-edge throughput (WMA selection)"
        )
    )

    feasible = [r for r in rows if r["cost"] is not None]
    costs = [r["cost"] for r in feasible]
    # Tightening throughput never lowers the cost.
    assert costs == sorted(costs)
    # The unconstrained point anchors the ratio at 1.
    assert feasible[0]["vs_unconstrained"] == 1.0
    # At least the unconstrained and one constrained point are feasible
    # on a grid (alternative routes exist).
    assert len(feasible) >= 2
    benchmark.extra_info["rows"] = rows
