"""Ablations of WMA's design choices (DESIGN.md section 5).

Not figures from the paper, but benchmarks isolating the paper's design
arguments:

* Theorem-1 pruning threshold vs. the tau-prime bound of U et al. [15]
  (Section V claims the new bound is tighter => fewer edges revealed);
* selective demand growth vs. uniform growth (Section IV-F claims
  selective is "much more effective");
* least-recently-used tie-breaking vs. arbitrary (Section IV-A's
  diversification argument).
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.demand import UniformDemandPolicy
from repro.core.wma import WMASolver
from repro.datagen.instances import clustered_instance
from repro.flow.sspa import ThresholdRule


def _instances(count: int = 4):
    return [
        clustered_instance(
            512, n_clusters=20, alpha=1.5, customer_frac=0.15,
            capacity=8, k_frac_of_m=0.3, seed=seed,
        )
        for seed in range(count)
    ]


def test_ablation_threshold(benchmark):
    """Theorem-1 bound vs tau-prime bound: edges revealed and runtime."""
    instances = _instances()

    def run(rule):
        out = []
        for inst in instances:
            solver = WMASolver(inst, threshold_rule=rule)
            sol = solver.solve()
            out.append(sol)
        return out

    t1_solutions = benchmark.pedantic(
        lambda: run(ThresholdRule.THEOREM1), rounds=1, iterations=1
    )
    tau_solutions = run(ThresholdRule.TAU_PRIME)

    rows = []
    for name, sols in (("theorem1", t1_solutions), ("tau_prime", tau_solutions)):
        rows.append(
            {
                "rule": name,
                "total_edges": sum(s.meta["edges_materialized"] for s in sols),
                "total_dijkstra": sum(s.meta["dijkstra_runs"] for s in sols),
                "mean_objective": round(
                    sum(s.objective for s in sols) / len(sols), 1
                ),
                "total_runtime_s": round(
                    sum(s.runtime_sec for s in sols), 3
                ),
            }
        )
    print()
    print(format_table(rows, title="Ablation: pruning threshold (Section V)"))

    t1, tau = rows
    # Both reach solutions of identical quality (same matchings)...
    assert t1["mean_objective"] == tau["mean_objective"]
    # ...but the paper's bound reveals no more edges.
    assert t1["total_edges"] <= tau["total_edges"]
    benchmark.extra_info["rows"] = rows


def test_ablation_demand_policy(benchmark):
    """Selective vs uniform demand growth: exploration effort."""
    instances = _instances()

    def run_selective():
        return [WMASolver(inst).solve() for inst in instances]

    selective = benchmark.pedantic(run_selective, rounds=1, iterations=1)
    uniform = [
        WMASolver(inst, demand_policy=UniformDemandPolicy()).solve()
        for inst in instances
    ]

    rows = []
    for name, sols in (("selective", selective), ("uniform", uniform)):
        rows.append(
            {
                "policy": name,
                "total_edges": sum(s.meta["edges_materialized"] for s in sols),
                "total_iterations": sum(s.meta["iterations"] for s in sols),
                "mean_objective": round(
                    sum(s.objective for s in sols) / len(sols), 1
                ),
                "total_runtime_s": round(sum(s.runtime_sec for s in sols), 3),
            }
        )
    print()
    print(format_table(rows, title="Ablation: demand policy (Section IV-F)"))

    sel, uni = rows
    # Selective growth explores fewer bipartite edges for comparable
    # quality (the paper's efficiency argument).
    assert sel["total_edges"] <= uni["total_edges"]
    assert sel["mean_objective"] <= uni["mean_objective"] * 1.15
    benchmark.extra_info["rows"] = rows


def test_ablation_tie_breaking(benchmark):
    """LRU (paper) vs index vs cost tie-breaking in the set cover.

    The ``cost`` variant is this library's extension: among equal
    marginal gains, prefer the facility with the cheapest service
    cluster.  On tie-dense instances it is markedly more stable than the
    paper's pure LRU rotation (see EXPERIMENTS.md).
    """
    instances = _instances(6)

    def run_lru():
        return [WMASolver(inst, tie_breaking="lru").solve() for inst in instances]

    lru = benchmark.pedantic(run_lru, rounds=1, iterations=1)
    index = [
        WMASolver(inst, tie_breaking="index").solve() for inst in instances
    ]
    cost = [
        WMASolver(inst, tie_breaking="cost").solve() for inst in instances
    ]

    rows = [
        {
            "tie_breaking": name,
            "mean_objective": round(
                sum(s.objective for s in sols) / len(sols), 1
            ),
            "total_iterations": sum(s.meta["iterations"] for s in sols),
        }
        for name, sols in (("lru", lru), ("index", index), ("cost", cost))
    ]
    print()
    print(format_table(rows, title="Ablation: set-cover tie-breaking"))

    by_name = {row["tie_breaking"]: row for row in rows}
    # The paper's diversification must not hurt badly vs arbitrary order,
    # and the cost extension should be at least competitive with LRU.
    assert by_name["lru"]["mean_objective"] <= by_name["index"]["mean_objective"] * 1.15
    assert by_name["cost"]["mean_objective"] <= by_name["lru"]["mean_objective"] * 1.05
    benchmark.extra_info["rows"] = rows
