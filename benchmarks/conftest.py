"""Shared machinery for the paper-reproduction benchmarks.

Every ``test_*`` here regenerates one table or figure of the paper's
Section VII (see DESIGN.md section 4 for the index): it sweeps the
figure's parameter, runs the paper's algorithm line-up on each point,
prints the same objective/runtime series the figure plots, and uses
``pytest-benchmark`` to time the headline WMA solve on the largest
point.

Run with:
    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import pytest

from repro import SOLVERS
from repro.bench import experiments as ex
from repro.bench.harness import BenchRow, run_solvers
from repro.bench.reporting import format_series, format_table, paper_shape_summary

EXACT_TIME_LIMIT = 45.0


def run_experiment(
    benchmark,
    cases: Sequence[tuple[dict[str, Any], Any]],
    *,
    x_key: str,
    title: str,
    methods: Sequence[str] = ("wma", "hilbert", "wma-naive"),
    with_exact: bool = True,
    benchmark_method: str = "wma",
) -> list[BenchRow]:
    """Run a figure's sweep, print its series, and benchmark one solve.

    The benchmarked call is the ``benchmark_method`` solver on the last
    (largest) case; every other (method, case) pair runs exactly once
    outside the timer.
    """
    rows: list[BenchRow] = []
    for idx, (params, instance) in enumerate(cases):
        case_methods = list(methods)
        if with_exact and ex.include_exact(instance):
            case_methods.append("exact")
        is_last = idx == len(cases) - 1
        for method in case_methods:
            if is_last and method == benchmark_method:
                continue  # timed separately below
            kwargs = (
                {"exact_time_limit": EXACT_TIME_LIMIT}
                if method == "exact"
                else {}
            )
            rows += run_solvers(
                instance, [method], params=params, **kwargs
            )

    params, instance = cases[-1]
    solution = benchmark.pedantic(
        lambda: SOLVERS[benchmark_method](instance), rounds=1, iterations=1
    )
    from repro.core.validation import validate_solution

    validate_solution(instance, solution)
    rows.append(
        BenchRow(
            label=instance.name,
            method=benchmark_method,
            objective=solution.objective,
            runtime_sec=solution.runtime_sec,
            params=params,
            meta=dict(solution.meta),
        )
    )

    print()
    print(format_series(rows, x_key=x_key, value="objective",
                        title=f"{title} -- objective"))
    print()
    print(format_series(rows, x_key=x_key, value="runtime_sec",
                        title=f"{title} -- runtime [s]"))
    summary = paper_shape_summary(rows)
    print()
    print(format_table(
        [{"method": m, **stats} for m, stats in sorted(summary.items())],
        title=f"{title} -- mean objective ratio vs best",
    ))
    benchmark.extra_info["shape"] = summary

    # Minimal sanity: the paper's algorithm must succeed on every point.
    assert all(
        r.status == "ok" for r in rows if r.method == benchmark_method
    ), f"{benchmark_method} failed on some sweep points"
    return rows


@pytest.fixture
def experiment(benchmark) -> Callable[..., list[BenchRow]]:
    """Figure-runner fixture bound to this test's benchmark."""

    def runner(cases, **kwargs):
        return run_experiment(benchmark, cases, **kwargs)

    return runner
