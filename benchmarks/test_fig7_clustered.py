"""Figure 7: clustered synthetic data, variable graph size.

Clustered data accentuates the difference between network and geometric
distance, so the paper's expected shape is a *wider* gap in WMA's favour:
Hilbert "fails to spot good facility locations" and WMA Naive "stands as
an outlier with significantly worse results"; with only 5 clusters
(Fig 7d, near-uniform) Hilbert nearly catches up.
"""

from __future__ import annotations

from repro.bench import experiments as ex
from repro.bench.reporting import paper_shape_summary


def test_fig7a(experiment):
    # Fig 7a includes BRNN once, as the paper does, to show it underperforms.
    rows = experiment(
        ex.fig7a_cases(sizes=(128, 256, 512, 1024)),
        x_key="n",
        title="Fig 7a (40 clusters, 20% customers, c=20)",
        methods=("wma", "hilbert", "wma-naive", "brnn"),
    )
    summary = paper_shape_summary(rows)
    if "brnn" in summary and "wma" in summary:
        assert (
            summary["wma"]["mean_ratio_to_best"]
            <= summary["brnn"]["mean_ratio_to_best"]
        )


def test_fig7b(experiment):
    experiment(
        ex.fig7b_cases(),
        x_key="n",
        title="Fig 7b (40 clusters, small capacity c=5)",
    )


def test_fig7c(experiment):
    experiment(
        ex.fig7c_cases(),
        x_key="n",
        title="Fig 7c (20 clusters, low occupancy o=0.2)",
    )


def test_fig7d(experiment):
    rows = experiment(
        ex.fig7d_cases(),
        x_key="n",
        title="Fig 7d (5 clusters, near-uniform, o=0.5)",
    )
    summary = paper_shape_summary(rows)
    # Near-uniform data: Hilbert becomes competitive (paper: "almost as
    # good as WMA") -- allow it within 40% of the best on average.
    if "hilbert" in summary:
        assert summary["hilbert"]["mean_ratio_to_best"] < 1.6
