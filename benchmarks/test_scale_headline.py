"""Headline scalability: the largest WMA run in the suite.

The paper's core claim is that WMA "scales gracefully to million-node
networks"; pure Python cannot go there in benchmark time, but this bench
pushes an order of magnitude beyond the figure sweeps (n = 8192, the
largest size Gurobi ever finished in the paper) and records the full
diagnostic trace.  The exact solver is not attempted -- at this size its
MILP would hold ~6.7M variables.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.validation import validate_solution
from repro.core.wma import WMASolver
from repro.datagen.instances import uniform_instance


def test_scale_headline(benchmark):
    instance = uniform_instance(
        8192,
        alpha=2.0,
        customer_frac=0.1,
        capacity=20,
        k_frac_of_m=0.1,
        seed=0,
    )
    solver = WMASolver(instance)
    solution = benchmark.pedantic(solver.solve, rounds=1, iterations=1)
    validate_solution(instance, solution)

    rows = [
        {
            "n": instance.network.n_nodes,
            "E": instance.network.n_edges,
            "m": instance.m,
            "k": instance.k,
            "objective": round(solution.objective, 1),
            "runtime_s": round(solution.runtime_sec, 2),
            "iterations": solution.meta["iterations"],
            "edges_revealed": solution.meta["edges_materialized"],
            "full_G_b_edges": instance.m * instance.l,
        }
    ]
    print()
    print(format_table(rows, title="Headline WMA run (n=8192)"))

    # The pruning claim: WMA must reveal a vanishing fraction of the
    # complete bipartite graph.
    revealed_fraction = (
        solution.meta["edges_materialized"] / (instance.m * instance.l)
    )
    print(f"revealed fraction of complete G_b: {revealed_fraction:.5f}")
    assert revealed_fraction < 0.01
    benchmark.extra_info["rows"] = rows
