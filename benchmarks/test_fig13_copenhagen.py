"""Figure 13: Copenhagen coworking (a) and bike docking stations (b).

Expected shapes (paper): WMA and UF WMA "outperform the baselines and
almost match Gurobi"; the objective decreases as k grows (the problem
gets easier with more usable facilities); Hilbert's accuracy improves
with more facilities.
"""

from __future__ import annotations

from repro.bench import experiments as ex


def test_fig13a(experiment):
    rows = experiment(
        ex.fig13a_cases(),
        x_key="k",
        title="Fig 13a (Copenhagen coworking)",
        methods=("wma", "wma-uf", "hilbert", "wma-naive"),
    )
    wma = sorted(
        (r.params["k"], r.objective) for r in rows if r.method == "wma"
    )
    assert wma[-1][1] <= wma[0][1]


def test_fig13b(experiment):
    rows = experiment(
        ex.fig13b_cases(),
        x_key="k",
        title="Fig 13b (Copenhagen bike docking stations)",
        methods=("wma", "wma-uf", "hilbert", "wma-naive"),
        with_exact=True,
    )
    by_k: dict[int, dict[str, float]] = {}
    for r in rows:
        if r.objective is not None:
            by_k.setdefault(r.params["k"], {})[r.method] = r.objective
    # WMA (direct) beats or matches Hilbert at every sweep point.
    for k, objs in by_k.items():
        if "hilbert" in objs:
            assert objs["wma"] <= objs["hilbert"] * 1.05, k
