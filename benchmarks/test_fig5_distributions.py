"""Figure 5: the synthetic point-distribution gallery.

The paper shows scatter plots of 10^4 points under 40 / 20 / 5 clusters
and uniform placement.  Text benchmarks cannot plot, so this bench
regenerates the four distributions and reports the quantitative
signature the pictures convey: spatial concentration (mean
nearest-neighbor distance) decreasing with the cluster count, and the
resulting networks' component structure.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import format_table
from repro.datagen.synthetic import clustered_points, uniform_points


def mean_nn_distance(points: np.ndarray, sample: int = 400) -> float:
    pts = points[:sample]
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    return float(np.sqrt(d2.min(axis=1)).mean())


def test_fig5(benchmark):
    def build():
        rng = np.random.default_rng(0)
        out = {"uniform": uniform_points(4000, rng)}
        for clusters in (40, 20, 5):
            rng = np.random.default_rng(0)
            out[f"{clusters} clusters"], _ = clustered_points(
                4000, clusters, rng
            )
        return out

    distributions = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, pts in distributions.items():
        rows.append(
            {
                "distribution": name,
                "mean_nn_dist": round(mean_nn_distance(pts), 2),
                "x_std": round(float(pts[:, 0].std()), 1),
            }
        )
    print()
    print(format_table(rows, title="Fig 5 (distribution signatures)"))

    by_name = {row["distribution"]: row for row in rows}
    # More clusters -> points fill the plane more -> larger cluster-local
    # spread differences; the uniform case has the largest NN distance.
    assert (
        by_name["uniform"]["mean_nn_dist"]
        >= by_name["40 clusters"]["mean_nn_dist"]
    )
    assert (
        by_name["40 clusters"]["mean_nn_dist"]
        >= by_name["5 clusters"]["mean_nn_dist"] * 0.8
    )
    benchmark.extra_info["rows"] = rows
