"""Figure 6: uniform synthetic data, variable graph size.

Four sub-experiments (a-d) sweep the network size under different
customer/facility densities and capacity models.  Expected shape (paper):
WMA ~ exact where exact finishes; Hilbert close on uniform data but
deviating as size grows; WMA Naive similar runtime, worse objective under
capacity pressure; exact solver failing beyond small sizes.
"""

from __future__ import annotations

from repro.bench import experiments as ex


def test_fig6a(experiment):
    rows = experiment(
        ex.fig6a_cases(),
        x_key="n",
        title="Fig 6a (alpha=2, 10% customers, c=20, o=0.5)",
    )
    # Scalability: WMA runtime must not explode across the sweep the way
    # the exact solver's does.
    wma = [r for r in rows if r.method == "wma"]
    assert max(r.runtime_sec for r in wma) < 30.0


def test_fig6b(experiment):
    experiment(
        ex.fig6b_cases(),
        x_key="n",
        title="Fig 6b (denser: 20% customers, c=4, k=m/2)",
    )


def test_fig6c(experiment):
    experiment(
        ex.fig6c_cases(),
        x_key="n",
        title="Fig 6c (sparse alpha=1.2, c=10, o=0.2)",
    )


def test_fig6d(experiment):
    rows = experiment(
        ex.fig6d_cases(),
        x_key="n",
        title="Fig 6d (nonuniform capacities 1..10)",
    )
    # Nonuniform capacities must be respected at every sweep point
    # (run_solvers validates); WMA should beat or match Hilbert on
    # average over the sweep.
    from repro.bench.reporting import paper_shape_summary

    summary = paper_shape_summary(rows)
    if "hilbert" in summary and "wma" in summary:
        assert (
            summary["wma"]["mean_ratio_to_best"]
            <= summary["hilbert"]["mean_ratio_to_best"] + 0.05
        )
