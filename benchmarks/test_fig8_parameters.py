"""Figure 8: clustered data, varying candidate count, customers, and k.

Expected shapes (paper): Hilbert is sensitive to the candidate-set size
while WMA is stable (8a); the objective grows with customers (8b, 8c)
and drops with more facilities (8d); WMA's runtime *drops* as k grows
(fewer iterations needed to find a cover).
"""

from __future__ import annotations

from repro import SOLVERS
from repro.bench import experiments as ex
from repro.bench.harness import BenchRow, run_solvers
from repro.bench.reporting import format_series, mean_rows, paper_shape_summary


def test_fig8a(benchmark):
    """Candidate-set sweep, seed-averaged (3 seeds per point)."""
    cases = ex.fig8a_cases()
    methods = ("wma", "hilbert", "wma-naive")
    rows: list[BenchRow] = []
    for params, instance in cases[:-1]:
        rows += run_solvers(instance, methods, params=params)

    params, instance = cases[-1]
    solution = benchmark.pedantic(
        lambda: SOLVERS["wma"](instance), rounds=1, iterations=1
    )
    rows.append(
        BenchRow(
            label=instance.name,
            method="wma",
            objective=solution.objective,
            runtime_sec=solution.runtime_sec,
            params=params,
        )
    )
    rows += run_solvers(
        instance, [m for m in methods if m != "wma"], params=params
    )

    averaged = mean_rows(rows, x_key="l_frac")
    print()
    print(format_series(averaged, x_key="l_frac", value="objective",
                        title="Fig 8a -- mean objective over 3 seeds"))
    print()
    print(format_series(averaged, x_key="l_frac", value="runtime_sec",
                        title="Fig 8a -- mean runtime [s]"))

    summary = paper_shape_summary(averaged)
    print()
    for method, stats in sorted(summary.items()):
        print(f"{method}: mean ratio to best {stats['mean_ratio_to_best']}")
    benchmark.extra_info["shape"] = summary

    # Shape (relaxed): WMA stays in Hilbert's quality neighborhood across
    # the sweep -- at benchmark scale tiny cover gains make individual
    # instances noisy; EXPERIMENTS.md records the deviation from the
    # paper's clearer separation at 10^4-node scale.
    assert (
        summary["wma"]["mean_ratio_to_best"]
        <= summary["hilbert"]["mean_ratio_to_best"] + 0.35
    )
    # WMA must beat the naive variant, whose greedy matching is its
    # actual ablation target.
    assert (
        summary["wma"]["mean_ratio_to_best"]
        <= summary["wma-naive"]["mean_ratio_to_best"] + 0.05
    )


def test_fig8b(experiment):
    rows = experiment(
        ex.fig8b_cases(),
        x_key="m",
        title="Fig 8b (variable customer count)",
    )
    wma = sorted(
        (r.params["m"], r.objective) for r in rows if r.method == "wma"
    )
    # Objective grows with the customer count.
    assert wma[0][1] < wma[-1][1]


def test_fig8c(experiment):
    experiment(
        ex.fig8c_cases(),
        x_key="m",
        title="Fig 8c (scale-up, multiple customers per node, o=0.1)",
    )


def test_fig8d(experiment):
    rows = experiment(
        ex.fig8d_cases(),
        x_key="k",
        title="Fig 8d (variable facility budget k)",
    )
    wma = sorted(
        (r.params["k"], r.objective) for r in rows if r.method == "wma"
    )
    # More facilities -> lower objective.
    assert wma[0][1] > wma[-1][1]
