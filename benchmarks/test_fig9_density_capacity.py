"""Figure 9: effect of network density (alpha) and capacity (c).

Expected shapes (paper): WMA's objective improves with average degree
(better facilities reachable within fewer hops); capacity has little
effect on quality except at very small capacities, where high occupancy
makes the problem hard.
"""

from __future__ import annotations

from repro.bench import experiments as ex


def test_fig9a(experiment):
    rows = experiment(
        ex.fig9a_cases(),
        x_key="avg_degree",
        title="Fig 9a (density sweep, 5 clusters, c=10)",
    )
    wma = sorted(
        (r.params["avg_degree"], r.objective)
        for r in rows
        if r.method == "wma"
    )
    # Denser networks offer shorter paths: the objective should not grow
    # with density.
    assert wma[-1][1] <= wma[0][1] * 1.1


def test_fig9b(experiment):
    rows = experiment(
        ex.fig9b_cases(),
        x_key="c",
        title="Fig 9b (capacity sweep, alpha=1.5)",
    )
    wma = {r.params["c"]: r.objective for r in rows if r.method == "wma"}
    # Once capacity is ample, growing it further changes little (paper:
    # "letting capacity grow further does not improve the solution").
    assert wma[24] <= wma[2] * 1.05
