"""Exact-solver scaling wall: where the MILP stops being practical.

The paper reports Gurobi failing beyond 8192 nodes (Fig 6), beyond 60% of
nodes as candidates (Fig 8a), and never finishing on the Table IV cities.
This bench maps the same wall for the HiGHS stand-in directly: a sweep of
the candidate-set size on a fixed network, with a hard time budget per
point, reporting where timeouts begin while WMA cruises.
"""

from __future__ import annotations

from repro import SOLVERS
from repro.bench.harness import BenchRow, run_solvers
from repro.bench.reporting import format_table
from repro.datagen.instances import clustered_instance

TIME_LIMIT = 20.0


def test_exact_scaling(benchmark):
    fracs = (0.1, 0.25, 0.5, 1.0)
    cases = []
    for frac in fracs:
        cases.append(
            (
                {"l_frac": frac},
                clustered_instance(
                    256,
                    n_clusters=20,
                    alpha=1.5,
                    customer_frac=0.2,
                    facility_frac=frac,
                    capacity=10,
                    k_frac_of_m=0.3,
                    seed=11,
                ),
            )
        )

    rows: list[BenchRow] = []
    for params, instance in cases:
        rows += run_solvers(
            instance,
            ["exact", "wma"],
            params=params,
            exact_time_limit=TIME_LIMIT,
        )

    # Benchmark the largest exact attempt separately for the timing table.
    _, biggest = cases[-1]

    def attempt_exact():
        try:
            return SOLVERS["exact"](biggest, time_limit=TIME_LIMIT)
        except Exception as exc:  # timeout is the expected outcome
            return exc

    benchmark.pedantic(attempt_exact, rounds=1, iterations=1)

    print()
    print(
        format_table(
            rows,
            title=f"Exact-vs-WMA wall (n=256, time budget {TIME_LIMIT:.0f}s)",
        )
    )

    wma_rows = [r for r in rows if r.method == "wma"]
    exact_rows = [r for r in rows if r.method == "exact"]
    # WMA must finish everywhere, quickly.
    assert all(r.status == "ok" for r in wma_rows)
    assert max(r.runtime_sec for r in wma_rows) < 10.0
    # The exact solver must degrade with the candidate count: runtime
    # non-trivially increasing or outright timeouts at the top end.
    ok_exact = [r for r in exact_rows if r.status == "ok"]
    if len(ok_exact) == len(exact_rows):
        assert ok_exact[-1].runtime_sec > ok_exact[0].runtime_sec
    else:
        # Timeouts happened: they must be at the large end, not the small.
        assert exact_rows[0].status == "ok"
    benchmark.extra_info["rows"] = [r.cells() for r in rows]
