"""Figure 12: Las Vegas coworking -- budget sweep and WMA iteration trace.

12a: objective/runtime vs k for WMA (Direct and Uniform-First), the
baselines, and the exact solver (feasible here thanks to the small
candidate set).  Expected shape: WMA matches the exact optimum at a
fraction of its runtime; UF WMA nearly ties Direct; Hilbert suffers from
the small F_p.

12b: per-iteration counters of one WMA run -- covered customers rise
steeply in the first iterations; the first matching phase costs an order
of magnitude more than later incremental ones.
"""

from __future__ import annotations

from repro.bench import experiments as ex
from repro.bench.reporting import format_table
from repro.core import WMASolver


def test_fig12a(experiment):
    rows = experiment(
        ex.fig12a_cases(),
        x_key="k",
        title="Fig 12a (Vegas coworking, operational-hour capacities)",
        methods=("wma", "wma-uf", "hilbert", "wma-naive", "brnn"),
    )
    by_k: dict[int, dict[str, float]] = {}
    for r in rows:
        if r.objective is not None:
            by_k.setdefault(r.params["k"], {})[r.method] = r.objective
    for k, objs in by_k.items():
        # Direct and UF WMA should be close (paper: "UF WMA meets the
        # optimal solution as well in most cases").
        if "wma" in objs and "wma-uf" in objs:
            assert objs["wma-uf"] <= objs["wma"] * 1.25, k
        # More budget never hurts WMA much across the sweep is checked
        # globally below.
    ks = sorted(by_k)
    assert by_k[ks[-1]]["wma"] <= by_k[ks[0]]["wma"] * 1.05


def test_fig12b(benchmark):
    instance = ex.fig12b_instance()
    solver = WMASolver(instance)
    solution = benchmark.pedantic(solver.solve, rounds=1, iterations=1)
    trace = solver.trace

    print()
    print(
        format_table(
            trace.rows(),
            title="Fig 12b (WMA iteration trace: covered / phase times)",
        )
    )

    # Shape checks from the paper's description:
    # most customers get covered within the first few iterations...
    third = max(1, trace.iterations // 3)
    assert trace.covered[third - 1] >= 0.7 * instance.m
    # ...and the first matching phase dominates later ones.
    if trace.iterations >= 3:
        later = max(trace.matching_time[2:]) if trace.matching_time[2:] else 0
        assert trace.matching_time[0] >= later
    # Coverage is monotone non-decreasing at termination.
    assert trace.covered[-1] == max(trace.covered)
    assert solution.objective > 0
    benchmark.extra_info["iterations"] = trace.iterations
