"""Benchmark: empirical validity of the static loop-cost model.

The cost tier (``repro.analysis.costmodel``) assigns every hot function
a symbolic worst-case degree -- the maximum nesting depth of
instance-sized loops reachable through its call graph.  That number is
only trustworthy as a *ceiling*: if a hot function's observed work grew
faster than its static degree, the model would be unsound and the
REP109 budget ratchet would be certifying garbage.

This bench solves the same uniform instance family at three sizes,
reads the ``obs`` work counters that the flow layer maintains
(heap pops, residual-Dijkstra runs, lazily materialized edges), and
fits a log-log growth slope for each counter.  Each counter is mapped
to the hot driver whose static summary bounds the total counted work
per solve:

====================================  =============================
counter                               bounding hot driver
====================================  =============================
``sspa.pops``                         ``flow.sspa.assign_all``
``sspa.dijkstra_runs``                ``flow.sspa.find_pair``
``incremental.edges_materialized``    ``flow.sspa.rebuild_rows``
====================================  =============================

The assertion is two-sided: the empirical slope must be genuinely
instance-sized (``> SLOPE_MIN``, i.e. the function is *not* bounded --
the model was right to count its loops) and must not exceed the static
degree plus a fitting tolerance (the model is a sound upper bound).
Observed slopes on easy uniform instances sit near 1; the static
ceilings are 3-4, so a violation means the model lost a loop, not that
the fit was noisy.

Run with:
    pytest benchmarks/test_costmodel_validity.py -s
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

from repro import SOLVERS
from repro.analysis.costmodel import CostModel
from repro.analysis.engine import LintEngine, default_root
from repro.datagen.instances import uniform_instance
from repro.obs import metrics

#: Instance sizes for the growth fit.  Three octave-spaced points keep
#: the fit meaningful while the whole sweep stays under a second.
SIZES = (150, 300, 600)

#: Moderate capacity pressure: loose enough to avoid the pathological
#: augmentation regime, tight enough that the SSPA layer does real work
#: (the counters stop being exact multiples of the customer count).
INSTANCE_KW = {"seed": 7, "capacity": (8, 16), "customer_frac": 0.2}

#: counter name -> cost-model node id whose static degree bounds it.
COUNTER_DRIVERS = {
    "sspa.pops": "flow.sspa.assign_all",
    "sspa.dijkstra_runs": "flow.sspa.find_pair",
    "incremental.edges_materialized": "flow.sspa.rebuild_rows",
}

#: The empirical slope must exceed this to count as instance-sized.
#: 0.5 separates genuine linear-or-worse growth from log factors and
#: constant overheads at these sizes.
SLOPE_MIN = 0.5

#: Fitting tolerance added to the static degree ceiling.
SLOPE_TOLERANCE = 0.25

BENCH_ROW_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_lint.json"
)


def _fit_slope(sizes, counts) -> float:
    """Least-squares slope of log(count) against log(n)."""
    xs = [math.log(n) for n in sizes]
    ys = [math.log(max(c, 1)) for c in counts]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def test_static_degrees_bound_observed_growth():
    model = CostModel(LintEngine(Path(default_root())).parse_project())

    observed: dict[int, dict[str, float]] = {}
    for n in SIZES:
        instance = uniform_instance(n, **INSTANCE_KW)
        registry = metrics.Registry()
        with metrics.use(registry):
            SOLVERS["wma"](instance)
        observed[n] = registry.as_dict()

    rows = []
    for counter, node_id in sorted(COUNTER_DRIVERS.items()):
        summary = model.summary(node_id)
        assert summary is not None, f"cost model lost hot node {node_id}"
        counts = [observed[n].get(counter, 0.0) for n in SIZES]
        assert all(c > 0 for c in counts), (
            f"{counter} never incremented -- wrong counter name or the "
            f"solver stopped exercising the flow layer"
        )
        slope = _fit_slope(SIZES, counts)
        rows.append(
            {
                "bench": "costmodel_validity",
                "counter": counter,
                "driver": node_id,
                "static_degree": summary.total_depth,
                "slope": round(slope, 3),
                "counts": counts,
                "sizes": list(SIZES),
            }
        )
        print(
            f"{counter}: slope {slope:.3f} vs static degree "
            f"{summary.total_depth} ({node_id})"
        )

        # Instance-sized: the model was right to count these loops.
        assert slope > SLOPE_MIN, (
            f"{counter} grew with slope {slope:.3f} <= {SLOPE_MIN}; the "
            f"counted loops in {node_id} look bounded, not instance-sized"
        )
        # Sound ceiling: observed growth never beats the static degree.
        assert slope <= summary.total_depth + SLOPE_TOLERANCE, (
            f"{counter} grew with slope {slope:.3f}, above the static "
            f"degree {summary.total_depth} of {node_id}: the cost model "
            f"is missing a loop on this path"
        )

    with open(BENCH_ROW_PATH, "a") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
