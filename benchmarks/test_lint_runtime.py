"""Benchmark: reprolint wall-clock on the repo's own source tree.

The static-analysis CI job runs the full rule set -- including the
CFG + dataflow tier (REP105..REP108) -- on every push, so its runtime
is a budget, not a curiosity: the lint must stay interactive.  This
bench runs the engine exactly as CI does (committed baseline, all
default rules) and appends a row to ``BENCH_lint.json`` recording the
file count, the rule count, and the wall-clock, so regressions in the
path-sensitive tier's cost show up as a trend rather than a surprise
CI timeout.

Run with:
    pytest benchmarks/test_lint_runtime.py -s
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis import LintEngine, default_root, load_baseline
from repro.analysis.cache import LintCache
from repro.analysis.rules import default_rules

#: CI budget for one full-tree lint, in seconds.  The observed cost is
#: ~3s on a dev container; 30s leaves room for slow shared runners
#: while still catching a blow-up in the dataflow tier (which would be
#: super-linear, not a constant factor).
LINT_BUDGET_SEC = 30.0

BENCH_ROW_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_lint.json"
)


def test_full_tree_lint_within_budget():
    root = default_root()
    baseline_path = os.path.join(
        os.path.dirname(root), "reprolint-baseline.json"
    )
    baseline = load_baseline(baseline_path)
    rules = default_rules()

    started = time.perf_counter()
    result = LintEngine(root, rules=rules).run(baseline)
    wall_sec = time.perf_counter() - started

    row = {
        "bench": "lint_runtime_full_tree",
        "files": result.files_scanned,
        "rules": len(rules),
        "findings": len(result.new_findings),
        "suppressed": result.suppressed,
        "wall_sec": round(wall_sec, 4),
        "budget_sec": LINT_BUDGET_SEC,
    }
    with open(BENCH_ROW_PATH, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    print(
        f"\nreprolint: {result.files_scanned} files, {len(rules)} rules in "
        f"{wall_sec:.2f}s (budget {LINT_BUDGET_SEC:.0f}s)"
    )

    assert result.ok, [f.rule for f in result.findings]
    assert wall_sec < LINT_BUDGET_SEC


#: Minimum speedup the warm (fingerprint-cache) lint must show over a
#: cold run of the same tree.  A full-hit warm run skips parsing and
#: every rule visit -- it only re-reads and re-digests sources -- so the
#: observed ratio is ~10-20x; 3x is the contract the incremental tier
#: promises (see docs/dev.md) with headroom for noisy shared runners.
WARM_SPEEDUP_MIN = 3.0


def test_warm_cache_lint_speedup(tmp_path):
    root = default_root()
    baseline_path = os.path.join(
        os.path.dirname(root), "reprolint-baseline.json"
    )
    baseline = load_baseline(baseline_path)
    cache = LintCache(tmp_path / "cache.json")

    started = time.perf_counter()
    cold = LintEngine(root, rules=default_rules()).run(baseline, cache=cache)
    cold_sec = time.perf_counter() - started

    started = time.perf_counter()
    warm = LintEngine(root, rules=default_rules()).run(baseline, cache=cache)
    warm_sec = time.perf_counter() - started

    speedup = cold_sec / warm_sec if warm_sec > 0 else float("inf")
    row = {
        "bench": "lint_runtime_warm_cache",
        "files": warm.files_scanned,
        "relinted": warm.relinted_count,
        "cold_sec": round(cold_sec, 4),
        "warm_sec": round(warm_sec, 4),
        "speedup": round(speedup, 2),
        "speedup_min": WARM_SPEEDUP_MIN,
    }
    with open(BENCH_ROW_PATH, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    print(
        f"\nreprolint warm cache: cold {cold_sec:.2f}s -> warm {warm_sec:.3f}s "
        f"({speedup:.1f}x, floor {WARM_SPEEDUP_MIN:.0f}x), "
        f"relinted {warm.relinted_count}/{warm.files_scanned} files"
    )

    # A no-change warm run must re-lint nothing and report identical
    # findings; the speedup floor is the headline incremental contract.
    assert warm.relinted_files == []
    assert [f.key() for f in warm.findings] == [f.key() for f in cold.findings]
    assert speedup >= WARM_SPEEDUP_MIN
