"""Table IV: uniform-capacity facility selection on the city proxies.

The paper's table reports objective / runtime for BRNN, Hilbert, WMA
Naive, and WMA on four cities with m=512 customers, k=51, c=20, and
F_p = V (Gurobi never finished).  Expected shape: WMA best everywhere;
the margin over Hilbert shrinks on the grid-shaped Las Vegas network;
BRNN is the worst on both quality and runtime.
"""

from __future__ import annotations

from repro import SOLVERS
from repro.bench import experiments as ex
from repro.bench.harness import BenchRow, run_solvers
from repro.bench.reporting import format_table


def test_table4(benchmark):
    cases = ex.table4_cases(scale=0.25, m=128, k=13, capacity=20)
    methods = ("brnn", "hilbert", "wma-naive")
    rows: list[BenchRow] = []
    for params, instance in cases:
        rows += run_solvers(instance, methods, params=params)

    # Benchmark WMA on the Las Vegas proxy (the paper's biggest city),
    # then run it on the rest.
    vegas = next(inst for p, inst in cases if p["city"] == "las_vegas")
    solution = benchmark.pedantic(
        lambda: SOLVERS["wma"](vegas), rounds=1, iterations=1
    )
    rows.append(
        BenchRow(
            label=vegas.name,
            method="wma",
            objective=solution.objective,
            runtime_sec=solution.runtime_sec,
            params={"city": "las_vegas"},
        )
    )
    for params, instance in cases:
        if params["city"] == "las_vegas":
            continue
        rows += run_solvers(instance, ["wma"], params=params)

    print()
    print(format_table(rows, title="Table IV (m=128, k=13, c=20, F_p=V)"))

    # Shape checks per city: WMA <= Hilbert <= BRNN (quality); the paper
    # reports ~30% improvements except Las Vegas (~9%).
    for params, _ in cases:
        city = params["city"]
        by_method = {
            r.method: r.objective
            for r in rows
            if r.params.get("city") == city and r.objective is not None
        }
        assert by_method["wma"] <= by_method["hilbert"] * 1.02, city
        assert by_method["hilbert"] <= by_method["brnn"] * 1.2, city
    benchmark.extra_info["rows"] = [r.cells() for r in rows]
