"""Ablation: local-search refinement headroom over raw solvers.

Not a paper figure -- the paper's related work notes that existing local
search cannot handle hard nonuniform capacities; this bench quantifies
what a capacity-aware local search (the library's extension) adds on top
of WMA and Hilbert, and how much runtime it costs.
"""

from __future__ import annotations

from repro import solve
from repro.bench.reporting import format_table
from repro.core.local_search import refine_solution
from repro.datagen.instances import clustered_instance


def test_ablation_local_search(benchmark):
    instances = [
        clustered_instance(
            512, n_clusters=20, alpha=1.5, customer_frac=0.15,
            capacity=8, k_frac_of_m=0.3, seed=seed,
        )
        for seed in range(4)
    ]

    base = {
        method: [solve(inst, method=method) for inst in instances]
        for method in ("wma", "hilbert")
    }

    def refine_all():
        return {
            method: [
                refine_solution(inst, sol, max_rounds=4)
                for inst, sol in zip(instances, sols, strict=True)
            ]
            for method, sols in base.items()
        }

    refined = benchmark.pedantic(refine_all, rounds=1, iterations=1)

    rows = []
    for method, sols in base.items():
        pairs = refined[method]
        base_total = sum(s.objective for s in sols)
        refined_total = sum(r.objective for r, _ in pairs)
        rows.append(
            {
                "start": method,
                "objective_before": round(base_total, 1),
                "objective_after": round(refined_total, 1),
                "improvement_pct": round(
                    100 * (1 - refined_total / base_total), 2
                ),
                "moves": sum(rep.moves_accepted for _, rep in pairs),
            }
        )
    print()
    print(format_table(rows, title="Ablation: local-search refinement"))

    for row in rows:
        assert row["objective_after"] <= row["objective_before"] + 1e-6
    # Weaker starting points must gain at least as much headroom.
    by_start = {row["start"]: row for row in rows}
    assert (
        by_start["hilbert"]["improvement_pct"]
        >= by_start["wma"]["improvement_pct"] - 0.5
    )
    benchmark.extra_info["rows"] = rows
