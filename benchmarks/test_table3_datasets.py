"""Table III: structural statistics of the (proxy) city networks.

The paper's table reports nodes, edges, average/max degree, and average
edge length for four OSM road networks.  The urban generators must
reproduce the structural signature: low average degree (2.2-2.4), short
edges, grid structure for Las Vegas.
"""

from __future__ import annotations

from repro.bench import experiments as ex
from repro.bench.reporting import format_table


def test_table3(benchmark):
    networks = benchmark.pedantic(
        lambda: ex.table3_networks(scale=0.25), rounds=1, iterations=1
    )
    rows = []
    for name, network in networks.items():
        row = {"city": name}
        row.update(network.stats().as_row())
        rows.append(row)
    print()
    print(format_table(rows, title="Table III (proxy city networks)"))

    by_city = {row["city"]: row for row in rows}
    # Size ordering mirrors the paper: Aalborg smallest, Las Vegas largest.
    assert by_city["aalborg"]["nodes"] < by_city["riga"]["nodes"]
    assert by_city["aalborg"]["nodes"] < by_city["las_vegas"]["nodes"]
    # Degree signature of road networks.
    for row in rows:
        assert 1.5 <= row["avg_degree"] <= 4.5, row
    benchmark.extra_info["table"] = rows
