"""Figure 10: scalability on the Aalborg proxy with growing m and k.

Fixed occupancy o=0.5, c=20, k=0.1m, growing customer count.  Expected
shape: WMA's quality advantage over Hilbert grows with problem size;
WMA Naive is competitive in runtime but worse in objective; BRNN's
objective "grows rapidly".
"""

from __future__ import annotations

from repro.bench import experiments as ex
from repro.bench.reporting import paper_shape_summary


def test_fig10(experiment):
    rows = experiment(
        ex.fig10_cases(),
        x_key="m",
        title="Fig 10 (Aalborg proxy, o=0.5, k=0.1m)",
        methods=("wma", "hilbert", "wma-naive", "brnn"),
        with_exact=False,
    )
    summary = paper_shape_summary(rows)
    assert (
        summary["wma"]["mean_ratio_to_best"]
        <= summary["hilbert"]["mean_ratio_to_best"]
    )
    assert (
        summary["wma"]["mean_ratio_to_best"]
        <= summary["brnn"]["mean_ratio_to_best"]
    )
