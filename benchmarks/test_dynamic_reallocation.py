"""Benchmark: dynamic customer reallocation throughput.

The paper motivates MCFS with workloads that require "the dynamic
reallocation of customers to facilities"; this bench measures the
operational layer built for that: incremental arrival cost versus
re-solving the assignment from scratch on every change.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import solve
from repro.bench.reporting import format_table
from repro.core.dynamic import DynamicAllocator
from repro.datagen.instances import clustered_instance
from repro.errors import MatchingError
from repro.flow.sspa import assign_all

# The legacy facade under test warns by design (see docs/api.md).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_dynamic_arrivals(benchmark):
    instance = clustered_instance(
        512, n_clusters=20, alpha=1.5, customer_frac=0.1,
        capacity=20, k_frac_of_m=0.2, seed=3,
    )
    selection = solve(instance, method="wma").selected
    rng = np.random.default_rng(0)
    arrivals = [int(v) for v in rng.integers(0, instance.network.n_nodes, 40)]

    def incremental():
        alloc = DynamicAllocator(instance, selection)
        served = 0
        for node in arrivals:
            try:
                alloc.add_customer(node)
                served += 1
            except MatchingError:
                break
        return alloc, served

    alloc, served = benchmark.pedantic(incremental, rounds=1, iterations=1)

    # Reference: re-solving the whole assignment after every arrival.
    sub_nodes = [instance.facility_nodes[j] for j in selection]
    sub_caps = [instance.capacities[j] for j in selection]
    t0 = time.perf_counter()
    pool_customers = list(instance.customers)
    resolves = 0
    for node in arrivals[:served]:
        pool_customers.append(node)
        try:
            assign_all(instance.network, pool_customers, sub_nodes, sub_caps)
        except MatchingError:
            pool_customers.pop()
            break
        resolves += 1
    scratch_time = time.perf_counter() - t0

    final_cost = alloc.cost
    reference = assign_all(
        instance.network, pool_customers, sub_nodes, sub_caps
    ).cost

    rows = [
        {
            "strategy": "incremental (DynamicAllocator)",
            "arrivals": served,
            "final_cost": round(final_cost, 1),
        },
        {
            "strategy": "re-solve per arrival",
            "arrivals": resolves,
            "final_cost": round(reference, 1),
            "total_time_s": round(scratch_time, 3),
        },
    ]
    print()
    print(format_table(rows, title="Dynamic reallocation: arrivals"))

    # The incremental allocator must stay exactly optimal.
    assert final_cost == __import__("pytest").approx(reference, rel=1e-9)
    benchmark.extra_info["arrivals"] = served
