"""Ablation: the cost of capacity-blind selection (kmedian-ls vs WMA).

The paper's related-work argument (Section III): local-search facility
location handles locations well but not hard nonuniform capacities.
This bench sweeps occupancy on one configuration and measures the
crossover -- with slack capacity the uncapacitated local search is a
strong baseline; as occupancy tightens its capacity-blind selection pays
an increasing price relative to WMA.
"""

from __future__ import annotations

from repro.bench.harness import run_solvers
from repro.bench.reporting import format_series
from repro.datagen.instances import clustered_instance


def test_ablation_capacity_blindness(benchmark):
    # k = 0.3 m fixed; capacity sweep drives occupancy o = m/(c*k).
    capacities = (4, 6, 10, 20)

    def build(c, seed=17):
        return clustered_instance(
            512,
            n_clusters=20,
            alpha=1.5,
            customer_frac=0.15,
            capacity=c,
            k_frac_of_m=0.3,
            seed=seed,
        )

    def run_all():
        rows = []
        for c in capacities:
            inst = build(c)
            occupancy = round(inst.occupancy, 2)
            rows += run_solvers(
                inst,
                ["wma", "kmedian-ls", "hilbert"],
                params={"c": c, "occupancy": occupancy},
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(format_series(rows, x_key="occupancy", value="objective",
                        title="Capacity-blind selection vs WMA"))

    by_occ: dict[float, dict[str, float]] = {}
    for r in rows:
        if r.objective is not None:
            by_occ.setdefault(r.params["occupancy"], {})[r.method] = (
                r.objective
            )
    occupancies = sorted(by_occ)  # ascending occupancy
    # Relative penalty of the capacity-blind baseline vs WMA per point.
    penalties = [
        by_occ[o]["kmedian-ls"] / by_occ[o]["wma"] for o in occupancies
    ]
    print(
        "kmedian-ls / wma by increasing occupancy:",
        [round(p, 3) for p in penalties],
    )

    # All rows must be feasible solutions.
    assert all(r.status == "ok" for r in rows)
    # At the loosest capacity the baseline is competitive (within 40%) --
    # indeed, at reproduction scale a well-seeded uncapacitated local
    # search *beats* our WMA there (see EXPERIMENTS.md).
    loosest = min(occupancies)
    assert by_occ[loosest]["kmedian-ls"] <= by_occ[loosest]["wma"] * 1.4
    # The capacity-blindness *trend*: the baseline's relative position
    # degrades as occupancy tightens.
    assert penalties[-1] >= penalties[0] - 0.05
    benchmark.extra_info["penalties"] = penalties
