"""Oracle-tier speedups on city-scale workloads (acceptance gates).

Two tiers, two workload shapes:

* **ALT** (point-to-point): once the landmark vectors are paid for (one
  kernel Dijkstra per landmark), every further query is a goal-directed
  A* that runs **zero** kernel Dijkstras -- at least a 10x reduction in
  ``dijkstra.kernel_runs`` on a repeated-query workload.
* **CH** (matrix-shaped): the many-to-many bucket algorithm replaces one
  kernel Dijkstra *per source* with one upward sweep per endpoint plus
  bucket scans, so whole ``distance_matrix`` blocks come out at least
  3x faster in wall-clock than the ALT path (which has no matrix hook
  and falls back to per-source kernel Dijkstras), preprocessing
  included, with a >= 30x reduction in kernel runs.

The three-way comparison appends a machine-readable row to
``BENCH_oracle.json`` so the perf trajectory survives CI runs.

Run with:
    pytest benchmarks/test_oracle_speedup.py -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.datagen.urban import grid_city
from repro.network import oracle as oracle_mod
from repro.network.ch import ContractionHierarchy
from repro.network.dijkstra import distance_matrix, shortest_path_lengths
from repro.network.oracle import AltOracle
from repro.obs import metrics

#: 71 x 71 perturbed Manhattan grid: ~5k nodes, the scale the issue's
#: acceptance criterion names.
ROWS = COLS = 71
N_QUERIES = 250
REQUIRED_SPEEDUP = 10.0

#: Matrix workload: one distance row per source against a fixed target
#: slice -- the shape ``kernels.distance_matrix`` sees from solvers.
#: Large enough that the one-off contraction (~2s) amortizes: the
#: per-source asymptote is ~5x, so the 3x gate holds with margin
#: against wall-clock noise.
N_MATRIX_SOURCES = 5000
N_MATRIX_TARGETS = 100
REQUIRED_CH_SPEEDUP = 3.0
REQUIRED_CH_RUN_REDUCTION = 30.0
BENCH_ROW_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_oracle.json")


def _workload(network, seed: int = 0) -> list[tuple[int, int]]:
    """Repeated point-to-point queries, as a matcher would issue them."""
    rng = np.random.default_rng(seed)
    n = network.n_nodes
    return [
        (int(u), int(v))
        for u, v in rng.integers(0, n, size=(N_QUERIES, 2))
    ]


class TestOracleKernelRunReduction:
    def test_repeated_queries_need_10x_fewer_kernel_runs(self):
        network = grid_city(ROWS, COLS, seed=0)
        assert network.n_nodes >= 5000
        pairs = _workload(network)

        kernel_reg = metrics.Registry()
        with metrics.use(kernel_reg):
            kernel_answers = [
                float(distance_matrix(network, [u], [v])[0, 0])
                for u, v in pairs
            ]
        kernel_runs = kernel_reg.as_dict()["dijkstra.kernel_runs"]

        oracle_reg = metrics.Registry()
        with metrics.use(oracle_reg):
            oracle = AltOracle.build(network)  # landmark Dijkstras count
            oracle_answers = [oracle.query(u, v) for u, v in pairs]
        oracle_runs = oracle_reg.as_dict()["dijkstra.kernel_runs"]

        assert oracle_answers == kernel_answers  # bit-identical
        assert oracle_runs > 0  # the build is honestly included
        speedup = kernel_runs / oracle_runs
        print(
            f"\nkernel path: {kernel_runs:g} kernel runs for "
            f"{N_QUERIES} queries; oracle path: {oracle_runs:g} "
            f"(build included) -> {speedup:.1f}x fewer"
        )
        assert speedup >= REQUIRED_SPEEDUP

    def test_query_work_is_goal_directed(self):
        """A* pops a small fraction of what the full Dijkstras settle."""
        network = grid_city(ROWS, COLS, seed=0)
        pairs = _workload(network, seed=1)[:50]

        kernel_reg = metrics.Registry()
        with metrics.use(kernel_reg):
            for u, _v in pairs:
                shortest_path_lengths(network, u)
        full_pops = kernel_reg.as_dict()["dijkstra.pops"]

        oracle = AltOracle.build(network)
        oracle_reg = metrics.Registry()
        with metrics.use(oracle_reg):
            for u, v in pairs:
                oracle.query(u, v)
        astar_pops = oracle_reg.as_dict()["oracle.query_pops"]
        print(
            f"\nfull-Dijkstra pops: {full_pops:g}; "
            f"goal-directed A* pops: {astar_pops:g}"
        )
        assert astar_pops < full_pops


def _timed_matrix(network, sources, targets, *, scope=None):
    """Run the matrix workload once, returning (block, seconds, counters).

    ``scope`` is an oracle instance to activate (its *build* has already
    been timed by the caller) or ``None`` for the raw kernel path.
    """
    reg = metrics.Registry()
    started = time.perf_counter()
    if scope is None:
        with metrics.use(reg):
            block = distance_matrix(network, sources, targets)
    else:
        with metrics.use(reg), oracle_mod.use(scope):
            block = distance_matrix(network, sources, targets)
    return block, time.perf_counter() - started, reg.as_dict()


class TestThreeWayMatrixComparison:
    """Kernel vs ALT vs CH on one matrix-shaped city workload."""

    def test_ch_matrix_blocks_beat_alt_path_3x(self):
        network = grid_city(ROWS, COLS, seed=0)
        assert network.n_nodes >= 5000
        rng = np.random.default_rng(0)
        sources = [
            int(s)
            for s in rng.integers(0, network.n_nodes, size=N_MATRIX_SOURCES)
        ]
        targets = [
            int(t)
            for t in rng.choice(
                network.n_nodes, size=N_MATRIX_TARGETS, replace=False
            )
        ]

        kernel_block, kernel_sec, kernel_counts = _timed_matrix(
            network, sources, targets
        )
        kernel_runs = kernel_counts["dijkstra.kernel_runs"]

        # ALT has no many-to-many hook: under an active ALT scope the
        # matrix path falls back to per-source kernel Dijkstras, so its
        # wall-clock is build + the kernel path.
        alt_started = time.perf_counter()
        alt = AltOracle.build(network)
        alt_build_sec = time.perf_counter() - alt_started
        alt_block, alt_run_sec, alt_counts = _timed_matrix(
            network, sources, targets, scope=alt
        )
        alt_sec = alt_build_sec + alt_run_sec

        ch_started = time.perf_counter()
        hierarchy = ContractionHierarchy.build(network)
        ch_build_sec = time.perf_counter() - ch_started
        ch_block, ch_run_sec, ch_counts = _timed_matrix(
            network, sources, targets, scope=hierarchy
        )
        ch_sec = ch_build_sec + ch_run_sec

        assert np.array_equal(kernel_block, alt_block)
        assert np.array_equal(kernel_block, ch_block)

        ch_runs = ch_counts.get("dijkstra.kernel_runs", 0)
        run_reduction = kernel_runs / max(ch_runs, 1)
        speedup_vs_alt = alt_sec / ch_sec
        row = {
            "bench": "oracle_matrix_three_way",
            "graph": {"kind": "grid_city", "rows": ROWS, "cols": COLS,
                      "seed": 0, "n_nodes": network.n_nodes},
            "workload": {"sources": N_MATRIX_SOURCES,
                         "targets": N_MATRIX_TARGETS},
            "kernel": {"sec": round(kernel_sec, 4),
                       "kernel_runs": kernel_runs},
            "alt": {"sec": round(alt_sec, 4),
                    "build_sec": round(alt_build_sec, 4),
                    "kernel_runs": alt_counts["dijkstra.kernel_runs"]},
            "ch": {"sec": round(ch_sec, 4),
                   "build_sec": round(ch_build_sec, 4),
                   "kernel_runs": ch_runs,
                   "shortcuts": hierarchy.n_shortcuts,
                   "matrix_blocks": ch_counts["ch.matrix_blocks"]},
            "speedup_vs_alt": round(speedup_vs_alt, 3),
            "kernel_run_reduction": (
                None if ch_runs == 0 else round(run_reduction, 1)
            ),
        }
        with open(BENCH_ROW_PATH, "a") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
        print(
            f"\nkernel {kernel_sec:.2f}s | alt {alt_sec:.2f}s "
            f"(build {alt_build_sec:.2f}s) | ch {ch_sec:.2f}s "
            f"(build {ch_build_sec:.2f}s) -> {speedup_vs_alt:.2f}x vs alt; "
            f"kernel runs {kernel_runs:g} -> {ch_runs:g}"
        )
        assert ch_counts["ch.matrix_blocks"] >= 1
        assert run_reduction >= REQUIRED_CH_RUN_REDUCTION
        assert speedup_vs_alt >= REQUIRED_CH_SPEEDUP
