"""ALT oracle speedup on a repeated-query workload (acceptance gate).

The oracle's reason to exist: once the landmark vectors are paid for
(one kernel Dijkstra per landmark), every further point-to-point query
is a goal-directed A* that runs **zero** kernel Dijkstras.  On a
city-scale graph with a repeated-query workload the kernel path spends
one full Dijkstra per query, so the oracle must show at least a 10x
reduction in ``dijkstra.kernel_runs`` -- the criterion CI enforces.

Run with:
    pytest benchmarks/test_oracle_speedup.py -s
"""

from __future__ import annotations

import numpy as np

from repro.datagen.urban import grid_city
from repro.network.dijkstra import distance_matrix, shortest_path_lengths
from repro.network.oracle import AltOracle
from repro.obs import metrics

#: 71 x 71 perturbed Manhattan grid: ~5k nodes, the scale the issue's
#: acceptance criterion names.
ROWS = COLS = 71
N_QUERIES = 250
REQUIRED_SPEEDUP = 10.0


def _workload(network, seed: int = 0) -> list[tuple[int, int]]:
    """Repeated point-to-point queries, as a matcher would issue them."""
    rng = np.random.default_rng(seed)
    n = network.n_nodes
    return [
        (int(u), int(v))
        for u, v in rng.integers(0, n, size=(N_QUERIES, 2))
    ]


class TestOracleKernelRunReduction:
    def test_repeated_queries_need_10x_fewer_kernel_runs(self):
        network = grid_city(ROWS, COLS, seed=0)
        assert network.n_nodes >= 5000
        pairs = _workload(network)

        kernel_reg = metrics.Registry()
        with metrics.use(kernel_reg):
            kernel_answers = [
                float(distance_matrix(network, [u], [v])[0, 0])
                for u, v in pairs
            ]
        kernel_runs = kernel_reg.as_dict()["dijkstra.kernel_runs"]

        oracle_reg = metrics.Registry()
        with metrics.use(oracle_reg):
            oracle = AltOracle.build(network)  # landmark Dijkstras count
            oracle_answers = [oracle.query(u, v) for u, v in pairs]
        oracle_runs = oracle_reg.as_dict()["dijkstra.kernel_runs"]

        assert oracle_answers == kernel_answers  # bit-identical
        assert oracle_runs > 0  # the build is honestly included
        speedup = kernel_runs / oracle_runs
        print(
            f"\nkernel path: {kernel_runs:g} kernel runs for "
            f"{N_QUERIES} queries; oracle path: {oracle_runs:g} "
            f"(build included) -> {speedup:.1f}x fewer"
        )
        assert speedup >= REQUIRED_SPEEDUP

    def test_query_work_is_goal_directed(self):
        """A* pops a small fraction of what the full Dijkstras settle."""
        network = grid_city(ROWS, COLS, seed=0)
        pairs = _workload(network, seed=1)[:50]

        kernel_reg = metrics.Registry()
        with metrics.use(kernel_reg):
            for u, _v in pairs:
                shortest_path_lengths(network, u)
        full_pops = kernel_reg.as_dict()["dijkstra.pops"]

        oracle = AltOracle.build(network)
        oracle_reg = metrics.Registry()
        with metrics.use(oracle_reg):
            for u, v in pairs:
                oracle.query(u, v)
        astar_pops = oracle_reg.as_dict()["oracle.query_pops"]
        print(
            f"\nfull-Dijkstra pops: {full_pops:g}; "
            f"goal-directed A* pops: {astar_pops:g}"
        )
        assert astar_pops < full_pops
